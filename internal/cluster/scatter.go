package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"artery/api"
	"artery/internal/server"
)

// errDeterminism marks the one unrecoverable shard failure: two attempts
// of the same shard delivered different bytes for the same global shot.
// Retrying cannot help — the fleet is lying about the determinism
// contract the merge path rests on — so the job fails loudly instead of
// silently picking a winner.
var errDeterminism = errors.New("cluster: attempts disagree on a shot's bytes (non-deterministic backend)")

// shardRange is one contiguous global shot range [Lo, Hi).
type shardRange struct{ Lo, Hi int }

// splitRange cuts the global range [offset, offset+shots) into at most n
// contiguous shards of near-equal size (earlier shards take the
// remainder), never emitting an empty shard.
func splitRange(offset, shots, n int) []shardRange {
	if n < 1 {
		n = 1
	}
	if n > shots {
		n = shots
	}
	out := make([]shardRange, 0, n)
	base, rem := shots/n, shots%n
	lo := offset
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, shardRange{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}

// shard is one dispatched shot range moving through scatter-gather. The
// buffer is ordinal-addressed and append-only: every attempt (first
// dispatch, failover replay, hedge duplicate) offers each event under
// its ordinal — the shot's index within the shard — and the buffer
// appends the first copy of each new ordinal, discards ordinals already
// merged past, and asserts bit-identity against ordinals still buffered.
// Nothing ever resets, so concurrent attempts can interleave freely: a
// replay races through the verified prefix by dedup while the merger
// keeps consuming, and a divergent byte anywhere is a loud determinism
// error instead of a silent coin flip.
//
// The merger addresses the buffer by its consumed-event cursor minus
// base and trims the prefix it has merged (the job's own event log holds
// the merged copy, so the coordinator never buffers a job's events
// twice).
type shard struct {
	index  int
	rng    shardRange
	mu     sync.Mutex
	events []api.ShotEvent
	base   int         // ordinal of events[0]; grows only by merger trims
	result *api.Result // the shard's own end-of-stream result (names, sanity)
	err    error       // terminal failure after the attempt budget
	notify chan struct{}
}

func newShard(index int, r shardRange) *shard {
	return &shard{index: index, rng: r, notify: make(chan struct{})}
}

// broadcast wakes the merger. Callers hold the lock.
func (s *shard) broadcast() {
	close(s.notify)
	s.notify = make(chan struct{})
}

// offer folds one attempt's event in under its ordinal (see the shard
// comment). The returned error is a determinism violation — terminal for
// the whole job.
func (s *shard) offer(ordinal int, ev api.ShotEvent) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := s.base + len(s.events)
	switch {
	case ordinal < s.base:
		// Already merged and trimmed: a replay or hedge catching up
		// through territory the merger has consumed.
		return nil
	case ordinal < next:
		if !api.EventsEqual(s.events[ordinal-s.base], ev) {
			return fmt.Errorf("%w: shard [%d,%d) shot %d", errDeterminism, s.rng.Lo, s.rng.Hi, ev.Shot)
		}
		return nil
	case ordinal == next:
		s.events = append(s.events, ev)
		s.broadcast()
		return nil
	default:
		// Attempts deliver ordinals sequentially from zero; a gap can
		// only mean a coordinator bug.
		return fmt.Errorf("cluster: internal error: shard [%d,%d) offered ordinal %d past %d", s.rng.Lo, s.rng.Hi, ordinal, next)
	}
}

// finish records the shard's terminal outcome: its result, or the error
// that exhausted the attempt budget.
func (s *shard) finish(res *api.Result, err error) {
	s.mu.Lock()
	s.result, s.err = res, err
	s.broadcast()
	s.mu.Unlock()
}

// execute is the coordinator's job executor (server.Config.Executor):
// scatter the job's shot range over the backends, gather the per-shot
// event streams, merge them in global shot order, and drive the job to
// its terminal state. Honors ctx: a drain — or an expired DeadlineMs,
// which the embedded server turns into a context deadline — completes
// the job with the deterministic merged prefix, exactly like a drained
// single node.
//
// A job recovered from the journal mid-run carries a merged-event prefix
// (see server.Job.Prefix): the fold is seeded with the prefix and only
// the unmerged remainder [offset+k, offset+shots) is sharded out, so a
// restarted coordinator resumes every shard at the job's last durable
// merged shot instead of re-running the range from shot 0. Because
// per-shot RNG streams are drawn by global index, the re-sharded
// remainder recombines with the journaled prefix byte-identically to an
// uninterrupted single-node run.
func (c *Coordinator) execute(ctx context.Context, j *server.Job) {
	req := j.Req
	agg := api.NewMerger(req)
	prefix := j.Prefix()
	for _, ev := range prefix {
		if err := agg.Add(ev); err != nil {
			j.Fail(fmt.Sprintf("cluster: journaled prefix: %v", err))
			return
		}
	}
	lo := req.ShotOffset + len(prefix)
	remaining := req.Shots - len(prefix)
	if remaining <= 0 {
		// The journal already holds every merged shot; only the terminal
		// record was lost to the crash.
		j.Complete(agg.Result(false))
		return
	}
	shards := make([]*shard, 0, c.cfg.Shards)
	for i, r := range splitRange(lo, remaining, c.cfg.Shards) {
		shards = append(shards, newShard(i, r))
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // stop in-flight shard streams once the job settles
	for _, sh := range shards {
		go c.runShard(ctx, req, sh)
	}
	c.gather(ctx, j, agg, shards)
}

// runShard drives one shard to completion: dispatch to a backend (with a
// hedge after the hedge delay), and on failure retry on the next healthy
// backend with jittered exponential backoff, up to the attempt budget. A
// determinism violation is terminal immediately — no retry can make two
// divergent byte streams agree.
func (c *Coordinator) runShard(ctx context.Context, req api.Request, sh *shard) {
	var lastErr error
	var prev *backend
	for attempt := 0; attempt < c.cfg.ShardAttempts; attempt++ {
		if attempt > 0 {
			c.m.shardsRetried.Inc()
			d := failoverDelay(attempt)
			c.m.backoffSleepMs.Add(d.Milliseconds())
			select {
			case <-time.After(d):
			case <-ctx.Done():
				sh.finish(nil, ctx.Err())
				return
			}
		}
		b := c.pickBackend(sh.index, attempt, nil)
		if attempt > 0 && b != prev {
			c.m.shardsFailedOver.Inc()
		}
		prev = b
		res, err := c.runAttempt(ctx, req, sh, b)
		if err == nil {
			sh.finish(res, nil)
			return
		}
		if errors.Is(err, errDeterminism) {
			sh.finish(nil, err)
			return
		}
		if ctx.Err() != nil {
			sh.finish(nil, ctx.Err())
			return
		}
		lastErr = err
	}
	c.m.shardsFailed.Inc()
	sh.finish(nil, fmt.Errorf("shard [%d,%d) failed after %d attempts: %w", sh.rng.Lo, sh.rng.Hi, c.cfg.ShardAttempts, lastErr))
}

// runAttempt races a primary dispatch against an optional hedge: if the
// primary has not finished after the hedge delay, the same shard is
// dispatched to a different backend and the first terminal answer wins.
// Safe under the determinism contract — both attempts must produce
// identical bytes, and the shard buffer asserts it — so first-wins
// cannot change output, only wall time. The losing attempt is canceled
// through the attempt context; its outcome is never recorded against its
// backend's breaker (a cancellation is the coordinator's doing, not the
// backend's failure).
func (c *Coordinator) runAttempt(ctx context.Context, req api.Request, sh *shard, primary *backend) (*api.Result, error) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		res    *api.Result
		err    error
		b      *backend
		hedged bool
	}
	ch := make(chan outcome, 2)
	launch := func(b *backend, hedged bool) {
		c.m.shardsDispatched.Inc()
		b.attempts.Inc()
		go func() {
			res, err := c.tryShard(actx, b, req, sh)
			ch <- outcome{res: res, err: err, b: b, hedged: hedged}
		}()
	}
	launch(primary, false)
	inflight := 1
	var hedgeTimer <-chan time.Time
	if !c.cfg.DisableHedging && len(c.backends) > 1 {
		hedgeTimer = time.After(c.hedgeDelay())
	}
	var firstErr error
	for {
		select {
		case out := <-ch:
			inflight--
			if out.err == nil {
				c.noteOutcome(out.b, true)
				if out.hedged {
					c.m.hedgeWins.Inc()
				}
				return out.res, nil
			}
			if errors.Is(out.err, errDeterminism) {
				return nil, out.err
			}
			if actx.Err() == nil {
				// A genuine backend failure, not our own cancellation.
				c.noteOutcome(out.b, false)
			}
			if firstErr == nil {
				firstErr = out.err
			}
			if inflight == 0 {
				return nil, firstErr
			}
		case <-hedgeTimer:
			hedgeTimer = nil
			if hb := c.pickBackend(sh.index, 0, primary); hb != nil {
				c.m.hedges.Inc()
				launch(hb, true)
				inflight++
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// hedgeDelay is how long a shard may go unanswered before it is hedged:
// the configured delay, or adaptively twice the observed p95 shard wall
// time, clamped to [200ms, 5s] (with no observations yet the floor
// applies — early traffic should not hedge on pure guesswork).
func (c *Coordinator) hedgeDelay() time.Duration {
	if c.cfg.HedgeDelay > 0 {
		return c.cfg.HedgeDelay
	}
	d := time.Duration(2 * c.m.shardSeconds.Quantile(0.95) * float64(time.Second))
	if d < 200*time.Millisecond {
		d = 200 * time.Millisecond
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

// failoverDelay is the jittered exponential backoff between shard
// attempts (the submission-level Retry-After/backoff dance lives in the
// client underneath).
func failoverDelay(attempt int) time.Duration {
	d := 100 * time.Millisecond << uint(attempt-1)
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// tryShard performs one shard attempt against one backend: submit the
// sub-request (the shard's global range, stage deltas always on — the
// merger needs them, and the remaining deadline budget when the job has
// one), stream every event into the shard buffer, and verify the backend
// delivered the complete, uncanceled, well-formed range. Every event and
// the terminal result are integrity-checked (api.ValidateEvent /
// ValidateResult), so a corrupt frame that survived JSON decoding is
// demoted to a retryable stream failure instead of reaching the merge.
func (c *Coordinator) tryShard(ctx context.Context, b *backend, req api.Request, sh *shard) (*api.Result, error) {
	start := time.Now()
	sub := req
	sub.ShotOffset = sh.rng.Lo
	sub.Shots = sh.rng.Hi - sh.rng.Lo
	sub.StreamStages = true
	if deadline, ok := ctx.Deadline(); ok {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, context.DeadlineExceeded
		}
		ms := int(remaining.Milliseconds())
		if ms < 1 {
			ms = 1
		}
		sub.DeadlineMs = ms
	}
	js, err := b.cl.Submit(ctx, sub)
	if err != nil {
		return nil, fmt.Errorf("backend %d (%s): submit: %w", b.index, b.base, err)
	}
	st, err := b.cl.Stream(ctx, js.ID)
	if err != nil {
		return nil, fmt.Errorf("backend %d (%s): stream: %w", b.index, b.base, err)
	}
	defer st.Close()
	n := 0
	for {
		ev, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("backend %d (%s): stream: %w", b.index, b.base, err)
		}
		if ev.Shot != sh.rng.Lo+n {
			return nil, fmt.Errorf("backend %d (%s): event %d carries shot %d, want %d", b.index, b.base, n, ev.Shot, sh.rng.Lo+n)
		}
		if verr := api.ValidateEvent(ev); verr != nil {
			return nil, fmt.Errorf("backend %d (%s): corrupt event: %w", b.index, b.base, verr)
		}
		if oerr := sh.offer(n, ev); oerr != nil {
			return nil, oerr
		}
		n++
	}
	end := st.End()
	if end == nil || end.State != api.StateDone || end.Result == nil {
		state, msg := "", ""
		if end != nil {
			state, msg = end.State, end.Error
		}
		return nil, fmt.Errorf("backend %d (%s): shard ended %s: %s", b.index, b.base, state, msg)
	}
	if verr := api.ValidateResult(end.Result); verr != nil {
		return nil, fmt.Errorf("backend %d (%s): corrupt result: %w", b.index, b.base, verr)
	}
	if end.Result.Canceled || n != sub.Shots {
		// A draining backend returns a truncated prefix — valid for its
		// own clients, but a missing tail for ours: fail over.
		return nil, fmt.Errorf("backend %d (%s): shard truncated at %d of %d shots (backend draining?)", b.index, b.base, n, sub.Shots)
	}
	elapsed := time.Since(start).Seconds()
	b.shardSeconds.Observe(elapsed)
	c.m.shardSeconds.Observe(elapsed)
	b.observe(elapsed)
	b.shardsServed.Inc()
	return end.Result, nil
}

// gather is the merge path: consume shard buffers strictly in shard
// order (global shot order), fold every event into the merger, and
// append it to the job's own event log (journaling it, when a store is
// configured, via AppendFull). One goroutine, exactly like the
// single-node engine's merge path — which is why the fold reproduces the
// single-node result bit-for-bit.
func (c *Coordinator) gather(ctx context.Context, j *server.Job, agg *api.Merger, shards []*shard) {
	for _, sh := range shards {
		consumed := 0
		for consumed < sh.rng.Hi-sh.rng.Lo {
			if ctx.Err() != nil {
				j.Complete(agg.Result(true))
				return
			}
			sh.mu.Lock()
			if idx := consumed - sh.base; idx >= 0 && idx < len(sh.events) {
				ev := sh.events[idx]
				// Trim the merged prefix; append's reallocations drop the
				// dead head, so the buffer holds only the unmerged window.
				sh.events = sh.events[idx+1:]
				sh.base = consumed + 1
				sh.mu.Unlock()
				consumed++
				if err := agg.Add(ev); err != nil {
					j.Fail(err.Error())
					return
				}
				c.m.shotsMerged.Inc()
				j.AppendFull(ev)
				continue
			}
			if sh.err != nil {
				err := sh.err
				sh.mu.Unlock()
				if err == context.Canceled || ctx.Err() != nil {
					j.Complete(agg.Result(true))
					return
				}
				j.Fail(err.Error())
				return
			}
			wait := sh.notify
			sh.mu.Unlock()
			select {
			case <-wait:
			case <-ctx.Done():
				j.Complete(agg.Result(true))
				return
			}
		}
		// The last event lands in the buffer before finish() records the
		// shard's result, so wait for the terminal record rather than
		// racing it — adopting canonical names must not depend on timing.
		sh.mu.Lock()
		for sh.result == nil && sh.err == nil {
			wait := sh.notify
			sh.mu.Unlock()
			select {
			case <-wait:
			case <-ctx.Done():
				j.Complete(agg.Result(true))
				return
			}
			sh.mu.Lock()
		}
		if sh.result != nil {
			agg.SetNames(sh.result)
		}
		sh.mu.Unlock()
	}
	j.Complete(agg.Result(false))
}
