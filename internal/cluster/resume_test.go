package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"testing"
	"time"

	"artery/api"
	"artery/client"
	"artery/internal/store"
)

// startStoredCoordinator fronts backends with a journal-backed
// coordinator rooted at dir.
func startStoredCoordinator(t *testing.T, dir string, bases []string) (*Coordinator, string, *store.Store) {
	t.Helper()
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	c, url := startCoordinator(t, Config{Backends: bases, Store: st, CheckpointShots: 4})
	return c, url, st
}

// TestCoordinatorResumesFromJournal is the multi-node durability
// contract: a coordinator killed mid-job leaves a journal with the job
// record and the first k merged events; a fresh coordinator over the same
// (or different) backends re-admits it, re-shards only the remaining
// range [k, shots), and the stitched result and event stream are
// byte-identical to an uninterrupted single-node run.
func TestCoordinatorResumesFromJournal(t *testing.T) {
	off := false
	req := api.Request{
		Workload: "qrw", Param: 3, Controller: "ARTERY", Shots: 36, Seed: 7,
		StreamStages: true, Options: &api.RequestOptions{StateSim: &off},
	}
	golden := startNode(t, 2, nil)
	wantRes, wantEvents := runJob(t, golden.ts.URL, req)

	// The golden run journaled through a coordinator gives us the full
	// merged event prefix to truncate.
	fullDir := t.TempDir()
	seedBackend := startNode(t, 2, nil)
	_, seedURL, seedStore := startStoredCoordinator(t, fullDir, []string{seedBackend.ts.URL})
	res0, ev0 := runJob(t, seedURL, req)
	compareRuns(t, "stored-coordinator", wantRes, wantEvents, res0, ev0)
	full, err := seedStore.Events("job-1", 0)
	if err != nil {
		t.Fatalf("journaled events: %v", err)
	}
	if len(full) != req.Shots {
		t.Fatalf("journal holds %d events, want %d", len(full), req.Shots)
	}

	for _, k := range []int{0, 1, 17, 35, 36} {
		// Fabricate the data dir a SIGKILLed coordinator leaves behind:
		// job record plus the first k merged events, no terminal record.
		dir := t.TempDir()
		st, err := store.Open(store.Config{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.JobSubmitted("job-1", req); err != nil {
			t.Fatal(err)
		}
		for _, ev := range full[:k] {
			if err := st.ShotEvent("job-1", ev); err != nil {
				t.Fatal(err)
			}
		}
		st.Close()

		// Resume over a different backend fleet (2 nodes, different worker
		// budgets): shard placement must not matter.
		bases := []string{startNode(t, 1, nil).ts.URL, startNode(t, 3, nil).ts.URL}
		st2, err := store.Open(store.Config{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		_, url := startCoordinator(t, Config{Backends: bases, Store: st2, CheckpointShots: 4})
		gotRes, gotEvents := collectRecovered(t, url, "job-1")
		compareRuns(t, fmt.Sprintf("cut=%d", k), wantRes, wantEvents, gotRes, gotEvents)
		st2.Close()
	}
}

// collectRecovered streams an already-admitted (recovered) job to its
// terminal line and returns the result JSON and each event's JSON.
func collectRecovered(t *testing.T, base, id string) (string, []string) {
	t.Helper()
	cl := client.MustNew(base, client.WithRetries(10))
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	st, err := cl.Stream(ctx, id)
	if err != nil {
		t.Fatalf("stream %s: %v", id, err)
	}
	defer st.Close()
	var events []string
	for {
		ev, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("stream next after %d events: %v", len(events), err)
		}
		b, _ := json.Marshal(ev)
		events = append(events, string(b))
	}
	end := st.End()
	if end == nil || end.State != api.StateDone || end.Result == nil {
		t.Fatalf("recovered job ended %+v", end)
	}
	b, _ := json.Marshal(end.Result)
	return string(b), events
}
