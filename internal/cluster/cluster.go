// Package cluster is the scatter-gather coordinator for multi-node
// arteryd: it serves the same /v1/jobs API as a single arteryd, but
// executes each job by splitting its shots into contiguous ranges,
// dispatching every range to one of N backend arteryd nodes as a
// shot-offset job (api.Request.ShotOffset), and merging the returned
// per-shot event streams in global shot order.
//
// Because per-shot RNG streams are drawn by global index (prefix-stable
// stats.RNG.SplitN) and every aggregate in a result is a replayable fold
// over the per-shot event stream, the merged result is byte-identical to
// the same request run on a single node — at any shard count, any
// per-node worker budget, and any co-tenancy on the backends.
//
// The same determinism underwrites the resilience layer (see
// DESIGN.md's Resilience section):
//
//   - Failover: a re-dispatched shard reproduces the exact event prefix
//     the dead backend already delivered, so the merger resumes
//     mid-shard with only its consumed-event cursor.
//   - Hedging: a shard stuck behind a straggler is speculatively
//     re-dispatched after a latency-percentile delay; because both
//     attempts must produce identical bytes, the first terminal answer
//     wins without changing output — and the shard buffer asserts the
//     identity on every overlapping event, failing the job loudly if a
//     backend ever disagrees with itself.
//   - Circuit breakers: per-backend trip/recover hysteresis (modeled on
//     fault.Tracker) keeps shard placement away from flapping nodes
//     without a human in the loop.
//   - Deadlines: api.Request.DeadlineMs propagates into every shard
//     sub-request with the remaining budget, so one slow shard cannot
//     hold a deadline-bound job past its promise.
//   - Overload shedding: while zero backends are healthy the
//     coordinator's /readyz reports not-ready and submissions shed with
//     a 503 instead of queueing jobs that cannot run.
package cluster

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"artery/client"
	"artery/internal/server"
	"artery/internal/store"
	"artery/internal/trace"
)

// Config sizes the coordinator. Zero values select the documented
// defaults; Backends is required.
type Config struct {
	// Backends are the base URLs of the arteryd nodes shards run on
	// (e.g. "http://10.0.0.1:7717"). At least one is required; URLs are
	// validated at construction.
	Backends []string
	// Shards is the number of contiguous shot ranges a job is split into
	// (default: one per backend). Jobs with fewer shots than shards get
	// one shard per shot.
	Shards int
	// ShardAttempts bounds how many times one shard is dispatched before
	// the whole job fails: the first attempt plus failovers (default 3).
	// Hedge attempts do not consume the budget — a hedge is a speculative
	// duplicate, not a retry.
	ShardAttempts int
	// HealthInterval is the backend /readyz polling period (default 250ms).
	HealthInterval time.Duration
	// HealthTimeout bounds one /readyz probe (default 2s). It is clamped
	// below HealthInterval — a probe outliving its polling period would
	// pile up requests against the very node that is struggling.
	HealthTimeout time.Duration
	// DisableHedging turns speculative shard duplication off. With
	// hedging on (the default), a shard still unanswered after
	// HedgeDelay is re-dispatched to a different healthy backend and the
	// first terminal answer wins — safe because both attempts must
	// deliver identical bytes (asserted per event).
	DisableHedging bool
	// HedgeDelay is the wait before hedging a shard (default adaptive:
	// 2× the observed p95 shard wall time, clamped to [200ms, 5s]).
	HedgeDelay time.Duration
	// DisableBreakers turns per-backend circuit breakers off.
	DisableBreakers bool
	// BreakerWindow, BreakerTrip, BreakerMinSamples and BreakerCooldown
	// shape the per-backend breaker (defaults: 16 outcomes, trip at 50%
	// failures over at least 4 samples, 2s cooldown before half-open).
	BreakerWindow     int
	BreakerTrip       float64
	BreakerMinSamples int
	BreakerCooldown   time.Duration
	// StragglerFactor declares a backend a straggler when its smoothed
	// shard wall time exceeds the fleet's fastest by this factor (default
	// 2.5×); stragglers are deprioritized by shard placement while they
	// lag, without being marked unhealthy.
	StragglerFactor float64
	// QueueDepth, MaxConcurrentJobs, MaxShots and MaxRetainedJobs size
	// the embedded admission server exactly as in server.Config.
	QueueDepth        int
	MaxConcurrentJobs int
	MaxShots          int
	MaxRetainedJobs   int
	// ClientOptions configures each backend's client (timeouts, retry
	// budgets). The default keeps submission retries short so failover
	// moves to another node quickly. The coordinator always installs its
	// own retry hook (per-backend retry metrics) after these options.
	ClientOptions []client.Option
	// Store and CheckpointShots configure the embedded server's durable
	// job journal exactly as in server.Config: with a store, the
	// coordinator journals accepted jobs and merged events, serves
	// finished jobs from disk across restarts, and resumes interrupted
	// jobs by re-sharding only the range past the last durable merged
	// shot (see execute).
	Store           *store.Store
	CheckpointShots int
}

func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = len(c.Backends)
	}
	if c.ShardAttempts == 0 {
		c.ShardAttempts = 3
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 250 * time.Millisecond
	}
	if c.HealthTimeout == 0 {
		c.HealthTimeout = 2 * time.Second
	}
	if c.HealthTimeout >= c.HealthInterval {
		// Clamp below the polling period: a slow probe must fail before
		// the next one starts, or probes pile up against a sick node.
		c.HealthTimeout = c.HealthInterval * 9 / 10
		if c.HealthTimeout < time.Millisecond {
			c.HealthTimeout = time.Millisecond
		}
	}
	if c.BreakerWindow == 0 {
		c.BreakerWindow = 16
	}
	if c.BreakerTrip == 0 {
		c.BreakerTrip = 0.5
	}
	if c.BreakerMinSamples == 0 {
		c.BreakerMinSamples = 4
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.StragglerFactor == 0 {
		c.StragglerFactor = 2.5
	}
	return c
}

// backend is one arteryd node: its client, its health flag (maintained
// by the poll loop), its circuit breaker, its straggler estimate and its
// per-backend instruments.
type backend struct {
	index   int
	base    string
	cl      *client.Client
	healthy atomic.Bool
	brk     *breaker

	// ewmaBits is the smoothed shard wall time (float64 seconds bits,
	// 0.8/0.2 EWMA) feeding straggler detection; ewmaN counts samples so
	// a cold backend is never judged.
	ewmaBits atomic.Uint64
	ewmaN    atomic.Int64

	shardSeconds *trace.Histogram
	shardsServed *trace.Counter
	attempts     *trace.Counter
	submitRetry  *trace.Counter
	retrySleepMs *trace.Counter
	brkState     *trace.Gauge
}

// observe folds one successful shard wall time into the straggler EWMA.
func (b *backend) observe(seconds float64) {
	for {
		old := b.ewmaBits.Load()
		prev := math.Float64frombits(old)
		next := seconds
		if b.ewmaN.Load() > 0 {
			next = 0.8*prev + 0.2*seconds
		}
		if b.ewmaBits.CompareAndSwap(old, math.Float64bits(next)) {
			b.ewmaN.Add(1)
			return
		}
	}
}

func (b *backend) ewma() (float64, int64) {
	return math.Float64frombits(b.ewmaBits.Load()), b.ewmaN.Load()
}

// metrics are the coordinator's shard-level instruments, registered on
// the embedded server's registry so /metrics exposes both.
type metrics struct {
	shardsDispatched *trace.Counter
	shardsRetried    *trace.Counter
	shardsFailedOver *trace.Counter
	shardsFailed     *trace.Counter
	shotsMerged      *trace.Counter
	hedges           *trace.Counter
	hedgeWins        *trace.Counter
	breakerTrips     *trace.Counter
	stragglerSkips   *trace.Counter
	backoffSleepMs   *trace.Counter
	backendsHealthy  *trace.Gauge
	breakersOpen     *trace.Gauge
	shardSeconds     *trace.Histogram
}

// Coordinator fronts a fleet of arteryd backends behind the single-node
// job API. Construct with New, attach Handler, call Start, Shutdown on
// SIGTERM.
type Coordinator struct {
	cfg      Config
	srv      *server.Server
	backends []*backend
	m        metrics
	healthHC *http.Client // one probe client shared by every health loop

	healthCtx    context.Context
	cancelHealth context.CancelFunc
	healthWG     sync.WaitGroup
}

// New builds a coordinator over the configured backends. Backend URLs
// are validated here; the coordinator's own admission server enforces
// the same request validation as a single node.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("cluster: at least one backend is required")
	}
	cfg = cfg.withDefaults()
	c := &Coordinator{cfg: cfg}
	c.healthHC = &http.Client{Timeout: cfg.HealthTimeout}
	c.srv = server.New(server.Config{
		QueueDepth:        cfg.QueueDepth,
		MaxConcurrentJobs: cfg.MaxConcurrentJobs,
		MaxShots:          cfg.MaxShots,
		MaxRetainedJobs:   cfg.MaxRetainedJobs,
		Executor:          c.execute,
		Store:             cfg.Store,
		CheckpointShots:   cfg.CheckpointShots,
		ReadyCheck:        c.fleetServes,
		AdmissionGate:     c.fleetServes,
	})
	reg := c.srv.Registry()
	c.m = metrics{
		shardsDispatched: reg.Counter("artery_cluster_shards_dispatched_total", "shard dispatches to backends (including failovers and hedges)"),
		shardsRetried:    reg.Counter("artery_cluster_shards_retried_total", "shard dispatches after a failed attempt"),
		shardsFailedOver: reg.Counter("artery_cluster_shards_failed_over_total", "shard retries that moved to a different backend"),
		shardsFailed:     reg.Counter("artery_cluster_shards_failed_total", "shards that exhausted their attempt budget"),
		shotsMerged:      reg.Counter("artery_cluster_shots_merged_total", "per-shot events merged across all jobs"),
		hedges:           reg.Counter("artery_cluster_hedges_total", "speculative duplicate shard dispatches after the hedge delay"),
		hedgeWins:        reg.Counter("artery_cluster_hedge_wins_total", "shards whose hedge attempt finished first"),
		breakerTrips:     reg.Counter("artery_cluster_breaker_trips_total", "circuit-breaker transitions to open"),
		stragglerSkips:   reg.Counter("artery_cluster_straggler_skips_total", "placements that passed over a straggling backend"),
		backoffSleepMs:   reg.Counter("artery_cluster_backoff_sleep_ms_total", "milliseconds slept in failover backoff between shard attempts"),
		backendsHealthy:  reg.Gauge("artery_cluster_backends_healthy", "backends currently passing /readyz"),
		breakersOpen:     reg.Gauge("artery_cluster_breakers_open", "backends with an open circuit breaker"),
		shardSeconds:     reg.Histogram("artery_cluster_shard_seconds", "shard wall time across all backends (hedge-delay source)", trace.DefaultJobSecondsBuckets()),
	}
	for i, base := range cfg.Backends {
		b := &backend{
			index:        i,
			brk:          newBreaker(cfg.BreakerWindow, cfg.BreakerTrip, cfg.BreakerMinSamples, cfg.BreakerCooldown),
			shardSeconds: reg.Histogram(fmt.Sprintf("artery_cluster_backend%d_shard_seconds", i), fmt.Sprintf("shard wall time on backend %d (%s)", i, base), trace.DefaultJobSecondsBuckets()),
			shardsServed: reg.Counter(fmt.Sprintf("artery_cluster_backend%d_shards_total", i), fmt.Sprintf("shards completed by backend %d (%s)", i, base)),
			attempts:     reg.Counter(fmt.Sprintf("artery_cluster_backend%d_attempts_total", i), fmt.Sprintf("shard attempts dispatched to backend %d (%s)", i, base)),
			submitRetry:  reg.Counter(fmt.Sprintf("artery_cluster_backend%d_submit_retries_total", i), fmt.Sprintf("submission-level retries against backend %d (%s)", i, base)),
			retrySleepMs: reg.Counter(fmt.Sprintf("artery_cluster_backend%d_retry_sleep_ms_total", i), fmt.Sprintf("milliseconds slept in submission backoff against backend %d (%s)", i, base)),
			brkState:     reg.Gauge(fmt.Sprintf("artery_cluster_breaker_state_backend%d", i), fmt.Sprintf("breaker state of backend %d (%s): 0 closed, 1 half-open, 2 open", i, base)),
		}
		opts := append([]client.Option{
			client.WithRetries(2),
			client.WithBackoff(50*time.Millisecond, time.Second),
			client.WithRetryAfterCap(2 * time.Second),
		}, cfg.ClientOptions...)
		// The metrics hook goes last so caller options cannot displace it.
		opts = append(opts, client.WithRetryHook(func(info client.RetryInfo) {
			b.submitRetry.Inc()
			b.retrySleepMs.Add(info.Delay.Milliseconds())
		}))
		cl, err := client.New(base, opts...)
		if err != nil {
			return nil, fmt.Errorf("cluster: backend %d: %w", i, err)
		}
		b.cl = cl
		b.base = cl.Endpoints()[0]
		b.healthy.Store(true) // optimistic until the first poll
		c.backends = append(c.backends, b)
	}
	c.m.backendsHealthy.Set(float64(len(c.backends)))
	c.healthCtx, c.cancelHealth = context.WithCancel(context.Background())
	return c, nil
}

// Handler returns the coordinator's HTTP handler — the same routes as a
// single arteryd (jobs, streams, metrics, healthz, readyz).
func (c *Coordinator) Handler() http.Handler { return c.srv.Handler() }

// Registry exposes the metrics registry (server + cluster instruments).
func (c *Coordinator) Registry() *trace.Registry { return c.srv.Registry() }

// Start launches the dispatcher pool and the backend health loops.
func (c *Coordinator) Start() {
	c.srv.Start()
	for _, b := range c.backends {
		c.healthWG.Add(1)
		go c.healthLoop(b)
	}
}

// Shutdown drains the coordinator: admission stops, in-flight jobs are
// canceled (completing with their deterministic merged prefix), and the
// health loops exit.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.cancelHealth()
	err := c.srv.Shutdown(ctx)
	c.healthWG.Wait()
	return err
}

// fleetServes is the coordinator's readiness predicate and admission
// gate: with zero healthy backends there is nothing to scatter onto, so
// /readyz reports not-ready (load balancers drain) and submissions shed
// with a 503 instead of queueing jobs that cannot run.
func (c *Coordinator) fleetServes() error {
	if c.healthyCount() == 0 {
		return fmt.Errorf("no healthy backends (0 of %d passing /readyz)", len(c.backends))
	}
	return nil
}

// healthLoop polls one backend's /readyz, flipping its health flag. An
// unhealthy backend is skipped by shard placement until it recovers. The
// first probe fires immediately — readiness truth should not wait a full
// polling period after boot.
func (c *Coordinator) healthLoop(b *backend) {
	defer c.healthWG.Done()
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	for {
		c.probe(b)
		select {
		case <-c.healthCtx.Done():
			return
		case <-t.C:
		}
	}
}

// probe performs one /readyz check against a backend, using the shared
// probe client (one idle pool for the whole fleet, not one per loop).
func (c *Coordinator) probe(b *backend) {
	req, err := http.NewRequestWithContext(c.healthCtx, http.MethodGet, b.base+"/readyz", nil)
	if err != nil {
		return
	}
	ok := false
	if resp, err := c.healthHC.Do(req); err == nil {
		ok = resp.StatusCode == http.StatusOK
		resp.Body.Close()
	}
	if b.healthy.Swap(ok) != ok {
		c.m.backendsHealthy.Set(float64(c.healthyCount()))
	}
}

func (c *Coordinator) healthyCount() int {
	n := 0
	for _, b := range c.backends {
		if b.healthy.Load() {
			n++
		}
	}
	return n
}

// noteOutcome records an attempt outcome into a backend's breaker and
// refreshes the breaker gauges.
func (c *Coordinator) noteOutcome(b *backend, ok bool) {
	if c.cfg.DisableBreakers {
		return
	}
	if b.brk.record(ok) {
		c.m.breakerTrips.Inc()
	}
	c.refreshBreakerGauges()
}

func (c *Coordinator) refreshBreakerGauges() {
	open := 0
	for _, b := range c.backends {
		st := b.brk.current()
		b.brkState.Set(float64(st))
		if st == breakerOpen {
			open++
		}
	}
	c.m.breakersOpen.Set(float64(open))
}

// breakerAllows reports whether placement may use a backend.
func (c *Coordinator) breakerAllows(b *backend) bool {
	return c.cfg.DisableBreakers || b.brk.allow()
}

// straggling reports whether a backend's smoothed shard wall time lags
// the fleet's fastest by the straggler factor. Judged only with at least
// two samples on both sides, and only for gaps above 50ms — at
// microbenchmark latencies the factor would trip on noise.
func (c *Coordinator) straggling(b *backend) bool {
	mine, n := b.ewma()
	if n < 2 {
		return false
	}
	best := math.Inf(1)
	for _, o := range c.backends {
		if o == b {
			continue
		}
		e, on := o.ewma()
		if on >= 2 && e < best {
			best = e
		}
	}
	if math.IsInf(best, 1) {
		return false
	}
	return mine > c.cfg.StragglerFactor*best && mine > best+0.05
}

// pickBackend places a shard attempt: shards start round-robin by index
// and each failover advances to the next backend. Placement prefers
// healthy, breaker-admitted, non-straggling nodes; failing that it drops
// the straggler veto, and as a last resort returns the nominal backend
// anyway (the poll may lag a recovery) — except for hedge placement
// (exclude != nil), which returns nil rather than hedge onto a node
// that is down, tripped, or the primary itself: a hedge is an
// optimization, not a right.
func (c *Coordinator) pickBackend(shardIdx, attempt int, exclude *backend) *backend {
	n := len(c.backends)
	start := (shardIdx + attempt) % n
	var fallback *backend
	for off := 0; off < n; off++ {
		b := c.backends[(start+off)%n]
		if b == exclude || !b.healthy.Load() || !c.breakerAllows(b) {
			continue
		}
		if c.straggling(b) {
			c.m.stragglerSkips.Inc()
			if fallback == nil {
				fallback = b
			}
			continue
		}
		return b
	}
	if fallback != nil {
		return fallback
	}
	if exclude != nil {
		return nil
	}
	return c.backends[start]
}
