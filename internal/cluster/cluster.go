// Package cluster is the scatter-gather coordinator for multi-node
// arteryd: it serves the same /v1/jobs API as a single arteryd, but
// executes each job by splitting its shots into contiguous ranges,
// dispatching every range to one of N backend arteryd nodes as a
// shot-offset job (api.Request.ShotOffset), and merging the returned
// per-shot event streams in global shot order.
//
// Because per-shot RNG streams are drawn by global index (prefix-stable
// stats.RNG.SplitN) and every aggregate in a result is a replayable fold
// over the per-shot event stream, the merged result is byte-identical to
// the same request run on a single node — at any shard count, any
// per-node worker budget, and any co-tenancy on the backends.
//
// Failures fail over: each shard is retried with jittered exponential
// backoff on the next healthy backend (submission-level 429/5xx retries,
// honoring Retry-After, are handled underneath by the client), and
// because a re-dispatched shard reproduces the exact event prefix the
// dead backend already delivered, the merger resumes mid-shard without
// dedup bookkeeping beyond its consumed-event cursor.
package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"artery/client"
	"artery/internal/server"
	"artery/internal/store"
	"artery/internal/trace"
)

// Config sizes the coordinator. Zero values select the documented
// defaults; Backends is required.
type Config struct {
	// Backends are the base URLs of the arteryd nodes shards run on
	// (e.g. "http://10.0.0.1:7717"). At least one is required; URLs are
	// validated at construction.
	Backends []string
	// Shards is the number of contiguous shot ranges a job is split into
	// (default: one per backend). Jobs with fewer shots than shards get
	// one shard per shot.
	Shards int
	// ShardAttempts bounds how many times one shard is dispatched before
	// the whole job fails: the first attempt plus failovers (default 3).
	ShardAttempts int
	// HealthInterval is the backend /readyz polling period (default 250ms).
	HealthInterval time.Duration
	// QueueDepth, MaxConcurrentJobs, MaxShots and MaxRetainedJobs size
	// the embedded admission server exactly as in server.Config.
	QueueDepth        int
	MaxConcurrentJobs int
	MaxShots          int
	MaxRetainedJobs   int
	// ClientOptions configures each backend's client (timeouts, retry
	// budgets). The default keeps submission retries short so failover
	// moves to another node quickly.
	ClientOptions []client.Option
	// Store and CheckpointShots configure the embedded server's durable
	// job journal exactly as in server.Config: with a store, the
	// coordinator journals accepted jobs and merged events, serves
	// finished jobs from disk across restarts, and resumes interrupted
	// jobs by re-sharding only the range past the last durable merged
	// shot (see execute).
	Store           *store.Store
	CheckpointShots int
}

func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = len(c.Backends)
	}
	if c.ShardAttempts == 0 {
		c.ShardAttempts = 3
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 250 * time.Millisecond
	}
	return c
}

// backend is one arteryd node: its client, its health flag (maintained
// by the poll loop) and its per-backend instruments.
type backend struct {
	index   int
	base    string
	cl      *client.Client
	healthy atomic.Bool

	shardSeconds *trace.Histogram
	shardsServed *trace.Counter
}

// metrics are the coordinator's shard-level instruments, registered on
// the embedded server's registry so /metrics exposes both.
type metrics struct {
	shardsDispatched *trace.Counter
	shardsRetried    *trace.Counter
	shardsFailedOver *trace.Counter
	shardsFailed     *trace.Counter
	shotsMerged      *trace.Counter
	backendsHealthy  *trace.Gauge
}

// Coordinator fronts a fleet of arteryd backends behind the single-node
// job API. Construct with New, attach Handler, call Start, Shutdown on
// SIGTERM.
type Coordinator struct {
	cfg      Config
	srv      *server.Server
	backends []*backend
	m        metrics

	healthCtx    context.Context
	cancelHealth context.CancelFunc
	healthWG     sync.WaitGroup
}

// New builds a coordinator over the configured backends. Backend URLs
// are validated here; the coordinator's own admission server enforces
// the same request validation as a single node.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("cluster: at least one backend is required")
	}
	cfg = cfg.withDefaults()
	c := &Coordinator{cfg: cfg}
	c.srv = server.New(server.Config{
		QueueDepth:        cfg.QueueDepth,
		MaxConcurrentJobs: cfg.MaxConcurrentJobs,
		MaxShots:          cfg.MaxShots,
		MaxRetainedJobs:   cfg.MaxRetainedJobs,
		Executor:          c.execute,
		Store:             cfg.Store,
		CheckpointShots:   cfg.CheckpointShots,
	})
	reg := c.srv.Registry()
	c.m = metrics{
		shardsDispatched: reg.Counter("artery_cluster_shards_dispatched_total", "shard dispatches to backends (including failovers)"),
		shardsRetried:    reg.Counter("artery_cluster_shards_retried_total", "shard dispatches after a failed attempt"),
		shardsFailedOver: reg.Counter("artery_cluster_shards_failed_over_total", "shard retries that moved to a different backend"),
		shardsFailed:     reg.Counter("artery_cluster_shards_failed_total", "shards that exhausted their attempt budget"),
		shotsMerged:      reg.Counter("artery_cluster_shots_merged_total", "per-shot events merged across all jobs"),
		backendsHealthy:  reg.Gauge("artery_cluster_backends_healthy", "backends currently passing /readyz"),
	}
	opts := append([]client.Option{
		client.WithRetries(2),
		client.WithBackoff(50*time.Millisecond, time.Second),
	}, cfg.ClientOptions...)
	for i, base := range cfg.Backends {
		cl, err := client.New(base, opts...)
		if err != nil {
			return nil, fmt.Errorf("cluster: backend %d: %w", i, err)
		}
		b := &backend{
			index:        i,
			base:         cl.Endpoints()[0],
			cl:           cl,
			shardSeconds: reg.Histogram(fmt.Sprintf("artery_cluster_backend%d_shard_seconds", i), fmt.Sprintf("shard wall time on backend %d (%s)", i, cl.Endpoints()[0]), trace.DefaultJobSecondsBuckets()),
			shardsServed: reg.Counter(fmt.Sprintf("artery_cluster_backend%d_shards_total", i), fmt.Sprintf("shards completed by backend %d (%s)", i, cl.Endpoints()[0])),
		}
		b.healthy.Store(true) // optimistic until the first poll
		c.backends = append(c.backends, b)
	}
	c.m.backendsHealthy.Set(float64(len(c.backends)))
	c.healthCtx, c.cancelHealth = context.WithCancel(context.Background())
	return c, nil
}

// Handler returns the coordinator's HTTP handler — the same routes as a
// single arteryd (jobs, streams, metrics, healthz, readyz).
func (c *Coordinator) Handler() http.Handler { return c.srv.Handler() }

// Registry exposes the metrics registry (server + cluster instruments).
func (c *Coordinator) Registry() *trace.Registry { return c.srv.Registry() }

// Start launches the dispatcher pool and the backend health loops.
func (c *Coordinator) Start() {
	c.srv.Start()
	for _, b := range c.backends {
		c.healthWG.Add(1)
		go c.healthLoop(b)
	}
}

// Shutdown drains the coordinator: admission stops, in-flight jobs are
// canceled (completing with their deterministic merged prefix), and the
// health loops exit.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.cancelHealth()
	err := c.srv.Shutdown(ctx)
	c.healthWG.Wait()
	return err
}

// healthLoop polls one backend's /readyz, flipping its health flag. An
// unhealthy backend is skipped by shard placement until it recovers.
func (c *Coordinator) healthLoop(b *backend) {
	defer c.healthWG.Done()
	hc := &http.Client{Timeout: 2 * time.Second}
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-c.healthCtx.Done():
			return
		case <-t.C:
		}
		req, err := http.NewRequestWithContext(c.healthCtx, http.MethodGet, b.base+"/readyz", nil)
		if err != nil {
			continue
		}
		ok := false
		if resp, err := hc.Do(req); err == nil {
			ok = resp.StatusCode == http.StatusOK
			resp.Body.Close()
		}
		if b.healthy.Swap(ok) != ok {
			c.m.backendsHealthy.Set(float64(c.healthyCount()))
		}
	}
}

func (c *Coordinator) healthyCount() int {
	n := 0
	for _, b := range c.backends {
		if b.healthy.Load() {
			n++
		}
	}
	return n
}

// pickBackend places a shard attempt: shards start round-robin by index
// and each failover advances to the next backend, skipping unhealthy
// nodes; when every node looks unhealthy the nominal one is tried anyway
// (the poll may lag a recovery).
func (c *Coordinator) pickBackend(shardIdx, attempt int) *backend {
	n := len(c.backends)
	start := (shardIdx + attempt) % n
	for off := 0; off < n; off++ {
		b := c.backends[(start+off)%n]
		if b.healthy.Load() {
			return b
		}
	}
	return c.backends[start]
}

