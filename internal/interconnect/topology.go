// Package interconnect models ARTERY's scalable controller interconnection
// (§5.2): FPGA boards plugged into layered backplanes, with feedback
// signals routed over a three-level hierarchy —
//
//	level 1: source and destination qubits on the same FPGA (on-chip),
//	level 2: different FPGAs under the same backplane (one serdes hop),
//	level 3: across backplanes (serdes to the uplink, one inter-backplane
//	         hop, serdes down).
//
// The model assigns qubits to FPGAs and computes the transmission latency
// of a feedback trigger between any qubit pair, which the controller adds
// to the feedback path for remote branches.
package interconnect

import (
	"fmt"

	"artery/internal/trace"
)

// Level is the routing level of a feedback path.
type Level int

// Routing levels.
const (
	LevelOnChip         Level = 1 // same FPGA
	LevelBackplane      Level = 2 // same backplane, FPGA-to-FPGA
	LevelInterBackplane Level = 3 // across backplanes
)

func (l Level) String() string {
	switch l {
	case LevelOnChip:
		return "on-chip"
	case LevelBackplane:
		return "backplane"
	case LevelInterBackplane:
		return "inter-backplane"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Latency constants (ns). Serdes hop latency is from §6.1; the on-chip
// path is a couple of fabric cycles; the backplane crossbar adds a small
// fixed switching delay per level-3 crossing.
const (
	OnChipLatencyNs    = 4.0  // one 250 MHz fabric cycle
	SerdesHopLatencyNs = 48.0 // FPGA <-> backplane serdes (§6.1)
	BackplaneXbarNs    = 8.0  // backplane-to-backplane crossbar switch
)

// Topology maps qubits onto FPGAs and FPGAs onto backplanes.
type Topology struct {
	QubitsPerFPGA     int
	FPGAsPerBackplane int
	NumQubits         int
}

// NewTopology returns a topology covering numQubits with the given
// grouping. It panics on non-positive parameters.
func NewTopology(numQubits, qubitsPerFPGA, fpgasPerBackplane int) *Topology {
	if numQubits <= 0 || qubitsPerFPGA <= 0 || fpgasPerBackplane <= 0 {
		panic("interconnect: non-positive topology parameter")
	}
	return &Topology{
		QubitsPerFPGA:     qubitsPerFPGA,
		FPGAsPerBackplane: fpgasPerBackplane,
		NumQubits:         numQubits,
	}
}

// PaperTopology returns the evaluation platform of §6.1: 18 Xmon qubits,
// FPGAs carrying 16 DACs / 4 ADCs handle 6 qubits each (XY+Z+readout per
// qubit), 2 FPGAs per backplane.
func PaperTopology() *Topology { return NewTopology(18, 6, 2) }

func (t *Topology) checkQubit(q int) {
	if q < 0 || q >= t.NumQubits {
		panic(fmt.Sprintf("interconnect: qubit %d out of range [0,%d)", q, t.NumQubits))
	}
}

// FPGAOf returns the FPGA index controlling qubit q.
func (t *Topology) FPGAOf(q int) int {
	t.checkQubit(q)
	return q / t.QubitsPerFPGA
}

// BackplaneOf returns the backplane index of FPGA f.
func (t *Topology) BackplaneOf(f int) int { return f / t.FPGAsPerBackplane }

// NumFPGAs returns the number of FPGAs needed for the qubit count.
func (t *Topology) NumFPGAs() int {
	return (t.NumQubits + t.QubitsPerFPGA - 1) / t.QubitsPerFPGA
}

// NumBackplanes returns the number of backplanes.
func (t *Topology) NumBackplanes() int {
	return (t.NumFPGAs() + t.FPGAsPerBackplane - 1) / t.FPGAsPerBackplane
}

// RouteLevel returns the hierarchy level used by a feedback from qubit src
// (where the readout is classified) to qubit dst (where the branch pulses
// play).
func (t *Topology) RouteLevel(src, dst int) Level {
	fs, fd := t.FPGAOf(src), t.FPGAOf(dst)
	if fs == fd {
		return LevelOnChip
	}
	if t.BackplaneOf(fs) == t.BackplaneOf(fd) {
		return LevelBackplane
	}
	return LevelInterBackplane
}

// Latency returns the trigger transmission latency in ns from src to dst.
func (t *Topology) Latency(src, dst int) float64 {
	switch t.RouteLevel(src, dst) {
	case LevelOnChip:
		return OnChipLatencyNs
	case LevelBackplane:
		// FPGA -> backplane -> FPGA: two serdes hops over non-overlapping
		// point-to-point lanes.
		return 2 * SerdesHopLatencyNs
	default:
		// FPGA -> backplane -> crossbar -> backplane -> FPGA.
		return 2*SerdesHopLatencyNs + BackplaneXbarNs + SerdesHopLatencyNs
	}
}

// MessageHops returns the number of store-and-forward message hops a
// feedback message traverses from src to dst — the hop count the fault
// model exposes to loss/corruption, one chance per hop. On-chip paths are
// fabric wires with no message framing (0 hops); a backplane path is two
// serdes hops; an inter-backplane path adds the crossbar (3 hops).
func (t *Topology) MessageHops(src, dst int) int {
	switch t.RouteLevel(src, dst) {
	case LevelOnChip:
		return 0
	case LevelBackplane:
		return 2
	default:
		return 3
	}
}

// RetryPenaltyNs prices retries resends of a message over the src→dst
// path: each resend pays the (doubling) receiver timeout plus one fresh
// transit of the full path. This is the latency the graceful-degradation
// policy adds to a feedback when its backplane messages are dropped or
// corrupted.
func (t *Topology) RetryPenaltyNs(src, dst, retries int, backoffNs float64) float64 {
	if retries <= 0 {
		return 0
	}
	transit := t.Latency(src, dst)
	penalty := 0.0
	for k := 0; k < retries; k++ {
		penalty += backoffNs + transit
		backoffNs *= 2
	}
	return penalty
}

// Hop is one segment of a routed feedback path.
type Hop struct {
	// Kind names the segment ("serdes-up", "xbar", "serdes-down", "fabric").
	Kind string
	// LatencyNs is the segment's transit latency.
	LatencyNs float64
}

// Route enumerates the hop sequence a feedback signal traverses from src
// to dst; the hop latencies sum to Latency(src, dst).
func (t *Topology) Route(src, dst int) []Hop {
	switch t.RouteLevel(src, dst) {
	case LevelOnChip:
		return []Hop{{"fabric", OnChipLatencyNs}}
	case LevelBackplane:
		return []Hop{{"serdes-up", SerdesHopLatencyNs}, {"serdes-down", SerdesHopLatencyNs}}
	default:
		return []Hop{
			{"serdes-up", SerdesHopLatencyNs},
			{"xbar", BackplaneXbarNs},
			{"serdes-up", SerdesHopLatencyNs},
			{"serdes-down", SerdesHopLatencyNs},
		}
	}
}

// RecordHops emits the src→dst hop traversal into span as StageHop
// annotations — one event per hop with cumulative transit times, Value
// holding the hop index and Outcome the routing level. Nil-safe via the
// span, and allocation-free: the hop sequence is enumerated inline rather
// than through Route.
func (t *Topology) RecordHops(span *trace.ShotSpan, src, dst int) {
	if span == nil {
		return
	}
	level := t.RouteLevel(src, dst)
	at := 0.0
	hop := 0
	emit := func(latNs float64) {
		span.Annotate(trace.StageHop, at, at+latNs, int(level), float64(hop))
		at += latNs
		hop++
	}
	switch level {
	case LevelOnChip:
		emit(OnChipLatencyNs)
	case LevelBackplane:
		emit(SerdesHopLatencyNs)
		emit(SerdesHopLatencyNs)
	default:
		emit(SerdesHopLatencyNs)
		emit(BackplaneXbarNs)
		emit(SerdesHopLatencyNs)
		emit(SerdesHopLatencyNs)
	}
}

// WorstCaseLatency returns the maximum trigger latency over all qubit
// pairs — the bound that sizes the dynamic timing controller's windows.
func (t *Topology) WorstCaseLatency() float64 {
	worst := 0.0
	for a := 0; a < t.NumQubits; a++ {
		for b := 0; b < t.NumQubits; b++ {
			if l := t.Latency(a, b); l > worst {
				worst = l
			}
		}
	}
	return worst
}

// FlatLatency returns the latency the same pair would pay on a
// non-hierarchical (single shared bus) interconnect, where every off-chip
// transfer crosses the full backplane chain. Used by tests and the design
// docs to show the hierarchy shortens the critical path.
func (t *Topology) FlatLatency(src, dst int) float64 {
	if t.FPGAOf(src) == t.FPGAOf(dst) {
		return OnChipLatencyNs
	}
	hops := float64(t.NumBackplanes())
	return 2*SerdesHopLatencyNs + hops*BackplaneXbarNs + SerdesHopLatencyNs
}
