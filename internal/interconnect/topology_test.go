package interconnect

import (
	"testing"
	"testing/quick"
)

func TestPaperTopologyShape(t *testing.T) {
	top := PaperTopology()
	if top.NumFPGAs() != 3 {
		t.Fatalf("NumFPGAs = %d, want 3 (18 qubits / 6 per FPGA)", top.NumFPGAs())
	}
	if top.NumBackplanes() != 2 {
		t.Fatalf("NumBackplanes = %d, want 2", top.NumBackplanes())
	}
}

func TestFPGAAssignment(t *testing.T) {
	top := PaperTopology()
	if top.FPGAOf(0) != 0 || top.FPGAOf(5) != 0 {
		t.Fatal("qubits 0-5 should be on FPGA 0")
	}
	if top.FPGAOf(6) != 1 || top.FPGAOf(17) != 2 {
		t.Fatal("FPGA assignment wrong")
	}
	if top.BackplaneOf(0) != 0 || top.BackplaneOf(1) != 0 || top.BackplaneOf(2) != 1 {
		t.Fatal("backplane assignment wrong")
	}
}

func TestRouteLevels(t *testing.T) {
	top := PaperTopology()
	if l := top.RouteLevel(0, 3); l != LevelOnChip {
		t.Fatalf("same-FPGA level = %v", l)
	}
	if l := top.RouteLevel(0, 7); l != LevelBackplane {
		t.Fatalf("same-backplane level = %v", l)
	}
	if l := top.RouteLevel(0, 13); l != LevelInterBackplane {
		t.Fatalf("cross-backplane level = %v", l)
	}
}

func TestLatencyHierarchy(t *testing.T) {
	top := PaperTopology()
	l1 := top.Latency(0, 1)
	l2 := top.Latency(0, 7)
	l3 := top.Latency(0, 13)
	if !(l1 < l2 && l2 < l3) {
		t.Fatalf("latency hierarchy violated: %v %v %v", l1, l2, l3)
	}
	if l1 != OnChipLatencyNs {
		t.Fatalf("on-chip latency %v", l1)
	}
	if l2 != 96 {
		t.Fatalf("backplane latency %v, want 96 (2 serdes hops)", l2)
	}
}

func TestLatencySymmetric(t *testing.T) {
	top := PaperTopology()
	f := func(a, b uint8) bool {
		qa, qb := int(a)%18, int(b)%18
		return top.Latency(qa, qb) == top.Latency(qb, qa)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWorstCaseLatency(t *testing.T) {
	top := PaperTopology()
	w := top.WorstCaseLatency()
	if w != top.Latency(0, 13) {
		t.Fatalf("worst case %v != cross-backplane latency", w)
	}
}

func TestHierarchyBeatsFlat(t *testing.T) {
	// The layered design must never be slower than a flat shared bus, and
	// strictly faster for same-backplane traffic on multi-backplane systems.
	top := NewTopology(48, 6, 2) // 8 FPGAs, 4 backplanes
	for a := 0; a < 48; a += 5 {
		for b := 0; b < 48; b += 7 {
			if top.Latency(a, b) > top.FlatLatency(a, b) {
				t.Fatalf("hierarchy slower than flat for (%d,%d)", a, b)
			}
		}
	}
	if !(top.Latency(0, 7) < top.FlatLatency(0, 7)) {
		t.Fatal("same-backplane path not faster than flat bus")
	}
}

func TestScalesToLargerSystems(t *testing.T) {
	top := NewTopology(512, 8, 4)
	if top.NumFPGAs() != 64 || top.NumBackplanes() != 16 {
		t.Fatalf("scaling: %d FPGAs, %d backplanes", top.NumFPGAs(), top.NumBackplanes())
	}
	// Level-3 latency is constant regardless of system size (point-to-point
	// layered routing), unlike the flat bus.
	if top.Latency(0, 511) != PaperTopology().Latency(0, 13) {
		t.Fatal("level-3 latency should not grow with system size")
	}
	if top.FlatLatency(0, 511) <= top.Latency(0, 511) {
		t.Fatal("flat bus should degrade on large systems")
	}
}

func TestTopologyPanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewTopology(0, 1, 1) },
		func() { NewTopology(1, 0, 1) },
		func() { PaperTopology().FPGAOf(18) },
		func() { PaperTopology().Latency(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestLevelString(t *testing.T) {
	if LevelOnChip.String() != "on-chip" || Level(9).String() == "" {
		t.Fatal("Level.String broken")
	}
}

func TestMessageHops(t *testing.T) {
	top := PaperTopology() // 6 qubits/FPGA, 2 FPGAs/backplane
	cases := []struct {
		src, dst, hops int
	}{
		{0, 5, 0},   // same FPGA: fabric wires, no message framing
		{0, 0, 0},   // self
		{0, 6, 2},   // same backplane, different FPGA: two serdes hops
		{0, 12, 3},  // across backplanes: serdes + crossbar + serdes
		{17, 0, 3},  // symmetric
	}
	for _, c := range cases {
		if got := top.MessageHops(c.src, c.dst); got != c.hops {
			t.Errorf("MessageHops(%d,%d) = %d, want %d", c.src, c.dst, got, c.hops)
		}
	}
}

func TestRetryPenaltyNs(t *testing.T) {
	top := PaperTopology()
	if got := top.RetryPenaltyNs(0, 12, 0, 16); got != 0 {
		t.Fatalf("zero retries cost %v ns", got)
	}
	transit := top.Latency(0, 12)
	// One retry: one backoff + one fresh transit.
	if got, want := top.RetryPenaltyNs(0, 12, 1, 16), 16+transit; got != want {
		t.Fatalf("1 retry = %v, want %v", got, want)
	}
	// Three retries: backoff doubles 16+32+64, plus three transits.
	if got, want := top.RetryPenaltyNs(0, 12, 3, 16), 16+32+64+3*transit; got != want {
		t.Fatalf("3 retries = %v, want %v", got, want)
	}
	// Penalty is monotone in retries.
	prev := 0.0
	for r := 1; r <= 6; r++ {
		p := top.RetryPenaltyNs(0, 6, r, 16)
		if p <= prev {
			t.Fatalf("penalty not monotone at %d retries: %v <= %v", r, p, prev)
		}
		prev = p
	}
}
