package readout

import (
	"math"
	"testing"
	"testing/quick"

	"artery/internal/stats"
)

func quietCal() *Calibration {
	c := DefaultCalibration()
	c.NoiseSigma = 0
	c.T1Ns = math.Inf(1)
	return c
}

func TestSynthesizeBasics(t *testing.T) {
	cal := DefaultCalibration()
	rng := stats.NewRNG(1)
	p := cal.Synthesize(1, rng)
	if len(p.Samples) != 2000 {
		t.Fatalf("samples = %d, want 2000", len(p.Samples))
	}
	if p.Prepared != 1 {
		t.Fatal("prepared state lost")
	}
	p0 := cal.Synthesize(0, rng)
	if !math.IsInf(p0.DecayedAtNs, 1) {
		t.Fatal("|0⟩ pulse cannot decay")
	}
}

func TestSynthesizePanicsOnBadState(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad state accepted")
		}
	}()
	DefaultCalibration().Synthesize(2, stats.NewRNG(1))
}

func TestDemodulationRecoversPhase(t *testing.T) {
	// Noise-free pulses demodulate exactly onto the expected centers.
	cal := quietCal()
	rng := stats.NewRNG(2)
	c0, c1 := cal.ExpectedCenters()
	p0 := cal.Synthesize(0, rng)
	p1 := cal.Synthesize(1, rng)
	w := cal.WindowSamples(30)
	iq0 := Demodulate(p0.Samples, 0, w, cal.Omega())
	iq1 := Demodulate(p1.Samples, 0, w, cal.Omega())
	// Up to the L/(L+1) normalization factor.
	scale := float64(w) / float64(w+1)
	if math.Abs(iq0.I-c0.I*scale) > 1e-9 || math.Abs(iq0.Q-c0.Q*scale) > 1e-9 {
		t.Fatalf("demod |0⟩ = %+v, want ~%+v", iq0, c0)
	}
	if math.Abs(iq1.Q-c1.Q*scale) > 1e-9 {
		t.Fatalf("demod |1⟩ = %+v, want ~%+v", iq1, c1)
	}
	// The two states must be separated in Q.
	if iq1.Q <= iq0.Q {
		t.Fatal("states not separated in the IQ plane")
	}
}

func TestDemodulateWindowChecks(t *testing.T) {
	cal := quietCal()
	p := cal.Synthesize(0, stats.NewRNG(3))
	for _, c := range []func(){
		func() { Demodulate(p.Samples, -1, 10, cal.Omega()) },
		func() { Demodulate(p.Samples, 0, 0, cal.Omega()) },
		func() { Demodulate(p.Samples, 1999, 10, cal.Omega()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid window accepted")
				}
			}()
			c()
		}()
	}
}

func TestTrajectoryWindowCount(t *testing.T) {
	cal := DefaultCalibration()
	rng := stats.NewRNG(4)
	p := cal.Synthesize(0, rng)
	traj := cal.Trajectory(p, 30, 0)
	// 2000 ns / 30 ns = 66 full windows.
	if len(traj) != 66 {
		t.Fatalf("trajectory windows = %d, want 66", len(traj))
	}
	traj2 := cal.Trajectory(p, 400, 0)
	if len(traj2) != 5 {
		t.Fatalf("400 ns windows = %d, want 5", len(traj2))
	}
	traj3 := cal.Trajectory(p, 30, 100)
	if len(traj3) != 3 {
		t.Fatalf("windows within 100 ns = %d, want 3", len(traj3))
	}
}

func TestSNRGrowsWithIntegrationTime(t *testing.T) {
	// Classification error from the integrated IQ must fall as the window
	// grows — the √t SNR growth the predictor relies on.
	cal := DefaultCalibration()
	cal.T1Ns = math.Inf(1) // isolate the noise effect
	rng := stats.NewRNG(5)
	errAt := func(uptoNs float64) float64 {
		c0, c1 := cal.ExpectedCenters()
		wrong := 0
		const n = 400
		for i := 0; i < n; i++ {
			state := i % 2
			p := cal.Synthesize(state, rng)
			pt := cal.IntegratedIQ(p, uptoNs)
			got := 0
			if pt.Dist2(c1) < pt.Dist2(c0) {
				got = 1
			}
			if got != state {
				wrong++
			}
		}
		return float64(wrong) / n
	}
	e30 := errAt(30)
	e300 := errAt(300)
	e2000 := errAt(2000)
	if !(e30 > e300 && e300 >= e2000) {
		t.Fatalf("error not decreasing with time: %v %v %v", e30, e300, e2000)
	}
	if e30 < 0.05 {
		t.Fatalf("single-window error %v unrealistically low", e30)
	}
	if e2000 > 0.01 {
		t.Fatalf("full-pulse error %v too high", e2000)
	}
}

func TestRelaxationBendsTrajectory(t *testing.T) {
	// Force an early decay and verify late windows classify as 0.
	cal := DefaultCalibration()
	cal.NoiseSigma = 0.2
	cal.T1Ns = 100 // decays almost immediately
	rng := stats.NewRNG(6)
	sawDecay := false
	for i := 0; i < 50; i++ {
		p := cal.Synthesize(1, rng)
		if math.IsInf(p.DecayedAtNs, 1) {
			continue
		}
		sawDecay = true
		c0, c1 := cal.ExpectedCenters()
		last := cal.Trajectory(p, 30, 0)
		pt := last[len(last)-1]
		if pt.Dist2(c0) > pt.Dist2(c1) {
			t.Fatalf("post-decay window still classifies as 1 (decay at %v)", p.DecayedAtNs)
		}
	}
	if !sawDecay {
		t.Fatal("no decays sampled with T1=100ns")
	}
}

func TestClassifierAccuracy(t *testing.T) {
	cal := DefaultCalibration()
	rng := stats.NewRNG(7)
	ds := GenerateDataset(cal, 0.5, rng)
	cls := NewClassifier(cal, 30, ds.Train)
	ok := 0
	for _, p := range ds.Test {
		if cls.ClassifyFull(p) == p.Prepared {
			ok++
		}
	}
	acc := float64(ok) / float64(len(ds.Test))
	if acc < 0.97 {
		t.Fatalf("full-pulse accuracy %v, want >= 0.97 (paper: 99%%)", acc)
	}
	// Single-window accuracy must be informative but far from perfect.
	okW, nW := 0, 0
	for _, p := range ds.Test[:500] {
		bits := cls.WindowBits(p, 30)
		want := 0
		if p.Prepared == 1 && p.DecayedAtNs > 15 {
			want = 1
		}
		if bits[0] == want {
			okW++
		}
		nW++
	}
	accW := float64(okW) / float64(nW)
	if accW < 0.6 || accW > 0.95 {
		t.Fatalf("single-window accuracy %v outside informative range", accW)
	}
}

func TestClassifierNeedsBothStates(t *testing.T) {
	cal := DefaultCalibration()
	rng := stats.NewRNG(8)
	var train []*Pulse
	for i := 0; i < 10; i++ {
		train = append(train, cal.Synthesize(0, rng))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("one-class training set accepted")
		}
	}()
	NewClassifier(cal, 30, train)
}

func TestStateTableKeying(t *testing.T) {
	tb := NewStateTable(3)
	// Short prefix uses the per-length sub-table.
	tb.Update([]int{1}, 1)
	tb.Update([]int{1}, 1)
	tb.Update([]int{0}, 0)
	if p := tb.PRead1([]int{1}); p <= 0.5 {
		t.Fatalf("P after two 1-observations = %v", p)
	}
	if p := tb.PRead1([]int{0}); p >= 0.5 {
		t.Fatalf("P after one 0-observation = %v", p)
	}
	// Longer-than-K prefixes truncate to the most recent K bits within the
	// same time bucket: two length-6 prefixes sharing their last 3 bits hit
	// the same entry.
	tb.Update([]int{0, 0, 0, 1, 1, 1}, 1)
	if p1, p2 := tb.PRead1([]int{0, 0, 0, 1, 1, 1}), tb.PRead1([]int{0, 1, 0, 1, 1, 1}); p1 != p2 {
		t.Fatalf("truncation mismatch: %v != %v", p1, p2)
	}
	// But the same pattern earlier in the readout lives in another bucket
	// (cumulative bits carry more evidence later).
	if p1, p2 := tb.PRead1([]int{0, 0, 0, 1, 1, 1}), tb.PRead1([]int{1, 1, 1}); p1 == p2 {
		t.Fatalf("time buckets not separated: %v == %v", p1, p2)
	}
	// Empty prefix is uninformative.
	if p := tb.PRead1(nil); p != 0.5 {
		t.Fatalf("empty prefix P = %v", p)
	}
}

func TestStateTableTrainingSharpens(t *testing.T) {
	cal := DefaultCalibration()
	rng := stats.NewRNG(9)
	ch := NewChannel(cal, 30, 6, rng)
	// Early in the readout an all-1 trajectory is suggestive but not
	// conclusive (cumulative SNR is still low)...
	early := []int{1, 1, 1, 1, 1, 1}
	pEarly := ch.Table.PRead1(early)
	if pEarly < 0.6 || pEarly > 0.95 {
		t.Fatalf("P(1|111111 @180ns) = %v, want informative but uncertain", pEarly)
	}
	// ...while deep into the readout the same pattern is near-certain.
	late := make([]int, 36)
	for i := range late {
		late[i] = 1
	}
	if p := ch.Table.PRead1(late); p < 0.9 {
		t.Fatalf("P(1|1x36 @1.08µs) = %v, want > 0.9", p)
	}
	lateZeros := make([]int, 36)
	if p := ch.Table.PRead1(lateZeros); p > 0.1 {
		t.Fatalf("P(1|0x36) = %v, want < 0.1", p)
	}
	if p := ch.Table.PRead1(late); p <= pEarly {
		t.Fatal("late evidence not stronger than early evidence")
	}
}

func TestStateTableProbabilityBoundsProperty(t *testing.T) {
	tb := NewStateTable(6)
	f := func(bits []bool, outcome bool) bool {
		ib := make([]int, len(bits))
		for i, b := range bits {
			if b {
				ib[i] = 1
			}
		}
		o := 0
		if outcome {
			o = 1
		}
		tb.Update(ib, o)
		p := tb.PRead1(ib)
		return p > 0 && p < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStateTableSizeBytes(t *testing.T) {
	// Paper: max memory 2^(k-3)(k+16) bytes per table; the cumulative-
	// trajectory calibration replicates it across MaxTimeBuckets epochs.
	tb := NewStateTable(6)
	want := MaxTimeBuckets * (1 << 6) * (6 + 16) / 8 // = 16·176 = 2816
	if got := tb.SizeBytes(); got != want {
		t.Fatalf("SizeBytes = %d, want %d", got, want)
	}
}

func TestStateTablePanicsOnBadK(t *testing.T) {
	for _, k := range []int{0, 21} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d accepted", k)
				}
			}()
			NewStateTable(k)
		}()
	}
}

func TestDatasetSplit(t *testing.T) {
	cal := DefaultCalibration()
	rng := stats.NewRNG(10)
	ds := GenerateDataset(cal, 0.5, rng)
	if len(ds.Train) != 1000 || len(ds.Test) != 3000 {
		t.Fatalf("split = %d/%d, want 1000/3000", len(ds.Train), len(ds.Test))
	}
	ones := 0
	for _, p := range ds.Train {
		ones += p.Prepared
	}
	frac := float64(ones) / float64(len(ds.Train))
	if math.Abs(frac-0.5) > 0.06 {
		t.Fatalf("train |1⟩ fraction %v, want ~0.5", frac)
	}
}

func TestDatasetLabel(t *testing.T) {
	cal := DefaultCalibration()
	rng := stats.NewRNG(11)
	ds := GenerateDataset(cal, 0.5, rng)
	cls := NewClassifier(cal, 30, ds.Train)
	ds.Label(cls)
	if len(ds.TestOutcomes) != len(ds.Test) {
		t.Fatal("labels missing")
	}
	// Labels must agree with prepared states most of the time.
	ok := 0
	for i, p := range ds.Test {
		if ds.TestOutcomes[i] == p.Prepared {
			ok++
		}
	}
	if acc := float64(ok) / float64(len(ds.Test)); acc < 0.97 {
		t.Fatalf("label agreement %v", acc)
	}
}

func TestChannelAccuracy(t *testing.T) {
	cal := DefaultCalibration()
	rng := stats.NewRNG(12)
	ch := NewChannel(cal, 30, 6, rng)
	var pulses []*Pulse
	for i := 0; i < 300; i++ {
		pulses = append(pulses, cal.Synthesize(i%2, rng))
	}
	if acc := ch.Accuracy(pulses); acc < 0.97 {
		t.Fatalf("channel accuracy %v", acc)
	}
	if ch.Accuracy(nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestIQHelpers(t *testing.T) {
	a, b := IQ{3, 4}, IQ{0, 0}
	if d := a.Dist2(b); d != 25 {
		t.Fatalf("Dist2 = %v", d)
	}
	if s := a.Sub(b); s != a {
		t.Fatalf("Sub = %+v", s)
	}
}

func TestWindowSamplesMinimum(t *testing.T) {
	cal := DefaultCalibration()
	if w := cal.WindowSamples(0.1); w != 1 {
		t.Fatalf("tiny window = %d samples, want 1", w)
	}
}
