// Package readout models the dispersive readout chain of a superconducting
// qubit at the waveform level and implements the signal-processing blocks
// ARTERY's predictor consumes: the windowed I/Q demodulation of §4, IQ
// trajectory vectorization, and the pre-generated <trajectory, P_read_1>
// state table.
//
// Physics substitute (see DESIGN.md): the readout resonator's dispersive
// shift maps the qubit state onto the phase of the captured carrier, so a
// state-s pulse is  a_i = A·e^{i(ω·i ± φ)} + n_i  with complex AWGN n_i.
// Integrating longer windows grows SNR like √t, which is why early windows
// give noisy state estimates that sharpen as the readout progresses — the
// exact structure the trajectory predictor exploits. A |1⟩ qubit may relax
// mid-readout (rate 1/T1), bending its trajectory toward the |0⟩ cluster,
// which is the dominant asymmetric error at 2 µs readouts.
package readout

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"

	"artery/internal/stats"
)

// Calibration holds the physical parameters of one readout channel.
type Calibration struct {
	SampleRateGSPS float64 // ADC rate (paper: 1 GSPS)
	CarrierCycles  float64 // IF carrier frequency in cycles/sample (ω/2π)
	Amp            float64 // carrier amplitude (arbitrary units)
	PhaseShift     float64 // ± dispersive phase shift, radians
	NoiseSigma     float64 // AWGN std-dev per quadrature per sample
	T1Ns           float64 // qubit relaxation time during readout
	DurationNs     float64 // readout pulse length (paper: 2 µs)
}

// DefaultCalibration returns the channel model tuned to the paper's device:
// 1 GSPS ADC, 2 µs readout, T1 = 125 µs, and an SNR putting one 30 ns
// demodulation window at ~70 % single-window classification accuracy while
// the full pulse reaches the calibrated 99 % readout fidelity.
func DefaultCalibration() *Calibration {
	return &Calibration{
		SampleRateGSPS: 1.0,
		CarrierCycles:  0.05,
		Amp:            1.0,
		PhaseShift:     0.15,
		NoiseSigma:     2.5,
		T1Ns:           125_000,
		DurationNs:     2000,
	}
}

// Samples returns the ADC sample count of the full readout pulse.
func (c *Calibration) Samples() int {
	return int(math.Round(c.DurationNs * c.SampleRateGSPS))
}

// Omega returns the carrier angular frequency per sample (ω in the paper's
// demodulation equations).
func (c *Calibration) Omega() float64 { return 2 * math.Pi * c.CarrierCycles }

// Pulse is one captured readout record.
type Pulse struct {
	Samples []complex128
	// Prepared is the qubit state at readout start.
	Prepared int
	// DecayedAtNs is the time at which a prepared |1⟩ relaxed to |0⟩
	// mid-readout, or +Inf when it survived (always +Inf for Prepared=0).
	DecayedAtNs float64
}

// carrierKey identifies one cached clean-carrier waveform: everything the
// deterministic (noise- and relaxation-free) part of a pulse depends on.
type carrierKey struct {
	cyc, amp, phase float64
	state, n        int
}

// carrierCache holds clean-carrier templates across all calibrations.
// Calibration structs are copied by value throughout the repo (mux groups,
// experiment sweeps), so the cache is a package-level map keyed by the
// carrier parameters rather than a field that a copy could go stale on or
// a lock a `c := *base` copy would trip vet over. Reads take an RLock — a
// map lookup against a 2000-sample synthesis loop — and the size cap makes
// pathological sweeps over thousands of distinct calibrations degrade to
// uncached builds instead of leaking.
var (
	carrierMu    sync.RWMutex
	carrierCache = map[carrierKey][]complex128{}
)

const carrierCacheMax = 256

// buildCarrier materializes the clean carrier with the exact incremental-
// phasor recurrence of the synthesis loop (cur *= rot), so template samples
// are bit-identical to the ones the loop would produce.
func buildCarrier(c *Calibration, state, n int) []complex128 {
	omega := c.Omega()
	rot := cmplx.Rect(1, omega)
	cur := cmplx.Rect(c.Amp, -c.PhaseShift)
	if state == 1 {
		cur = cmplx.Rect(c.Amp, +c.PhaseShift)
	}
	t := make([]complex128, n)
	for i := range t {
		t[i] = cur
		cur *= rot
	}
	return t
}

// carrierTemplate returns the cached clean carrier for one prepared state.
// The returned slice is shared and must be treated as read-only.
func carrierTemplate(c *Calibration, state, n int) []complex128 {
	key := carrierKey{cyc: c.CarrierCycles, amp: c.Amp, phase: c.PhaseShift, state: state, n: n}
	carrierMu.RLock()
	t, ok := carrierCache[key]
	carrierMu.RUnlock()
	if ok {
		return t
	}
	t = buildCarrier(c, state, n)
	carrierMu.Lock()
	if cached, ok := carrierCache[key]; ok {
		t = cached // lost the build race: share the winner
	} else if len(carrierCache) < carrierCacheMax {
		carrierCache[key] = t
	}
	carrierMu.Unlock()
	return t
}

// Synthesize produces one readout pulse record for a qubit prepared in
// state (0 or 1), sampling mid-readout relaxation and per-sample noise.
func (c *Calibration) Synthesize(state int, rng *stats.RNG) *Pulse {
	p := &Pulse{}
	c.SynthesizeInto(p, state, rng)
	return p
}

// SynthesizeInto is Synthesize writing into a caller-owned record (pool
// reuse): p.Samples is resized in place, so a pulse recycled through a
// PulsePool synthesizes without allocating. The RNG draw sequence — one
// optional relaxation draw, then two normal deviates per sample — and every
// output bit match Synthesize exactly.
//
// The deterministic carrier of a clean (non-decayed) pulse is shot-
// invariant, so it comes from a cached template and only the noise is
// generated per shot (via stats.RNG.AddComplexNorm, which replicates the
// scalar loop's draw stream). Decayed pulses — the rare T1-relaxation tail,
// ~1.6% of prepared-|1⟩ shots at the paper's 2 µs / 125 µs operating point
// — re-anchor the carrier mid-pulse at a random sample, so they keep the
// original scalar loop.
func (c *Calibration) SynthesizeInto(p *Pulse, state int, rng *stats.RNG) {
	if state != 0 && state != 1 {
		panic(fmt.Sprintf("readout: invalid state %d", state))
	}
	n := c.Samples()
	if cap(p.Samples) < n {
		p.Samples = make([]complex128, n)
	}
	p.Samples = p.Samples[:n]
	p.Prepared = state
	p.DecayedAtNs = math.Inf(1)
	if state == 1 && !math.IsInf(c.T1Ns, 1) {
		if t := rng.Exp(c.T1Ns); t < c.DurationNs {
			p.DecayedAtNs = t
		}
	}
	if math.IsInf(p.DecayedAtNs, 1) {
		rng.AddComplexNorm(p.Samples, carrierTemplate(c, state, n), c.NoiseSigma)
		return
	}
	omega := c.Omega()
	// Incremental phasor: rot = e^{iω}, carrier advances by one multiply per
	// sample instead of a trig call (re-anchored at the decay edge).
	rot := cmplx.Rect(1, omega)
	phase0 := cmplx.Rect(c.Amp, -c.PhaseShift)
	phase1 := cmplx.Rect(c.Amp, +c.PhaseShift)
	cur := phase1
	excited := true
	for i := 0; i < n; i++ {
		if excited && float64(i)/c.SampleRateGSPS >= p.DecayedAtNs {
			// Relaxation: re-anchor the carrier with the |0⟩ phase offset.
			cur = phase0 * cmplx.Rect(1, omega*float64(i))
			excited = false
		}
		noise := complex(rng.Norm()*c.NoiseSigma, rng.Norm()*c.NoiseSigma)
		p.Samples[i] = cur + noise
		cur *= rot
	}
}

// IQ is one demodulated point in the IQ plane.
type IQ struct{ I, Q float64 }

// Sub returns the componentwise difference a-b.
func (a IQ) Sub(b IQ) IQ { return IQ{a.I - b.I, a.Q - b.Q} }

// Dist2 returns the squared Euclidean distance between two IQ points.
func (a IQ) Dist2(b IQ) float64 {
	di, dq := a.I-b.I, a.Q-b.Q
	return di*di + dq*dq
}

// Demodulate computes the paper's windowed I/Q values over samples
// [start, start+window) with carrier frequency omega (radians/sample):
//
//	I = 1/(L+1) Σ (a_i.real·cos(ωi) + a_i.imag·sin(ωi))
//	Q = 1/(L+1) Σ (a_i.imag·cos(ωi) − a_i.real·sin(ωi))
//
// The index i inside the trigonometric terms is the absolute sample index,
// keeping windows phase-coherent with the carrier.
func Demodulate(samples []complex128, start, window int, omega float64) IQ {
	if start < 0 || window <= 0 || start+window > len(samples) {
		panic(fmt.Sprintf("readout: demodulation window [%d,%d) out of range 0..%d",
			start, start+window, len(samples)))
	}
	var i, q float64
	// Incremental reference phasor e^{iωk}, advanced by one complex multiply
	// per sample.
	ref := cmplx.Rect(1, omega*float64(start))
	rot := cmplx.Rect(1, omega)
	for k := start; k < start+window; k++ {
		c, s := real(ref), imag(ref)
		re, im := real(samples[k]), imag(samples[k])
		i += re*c + im*s
		q += im*c - re*s
		ref *= rot
	}
	norm := float64(window) + 1
	return IQ{I: i / norm, Q: q / norm}
}

// WindowSamples converts a window length in ns to ADC samples.
func (c *Calibration) WindowSamples(windowNs float64) int {
	w := int(math.Round(windowNs * c.SampleRateGSPS))
	if w < 1 {
		w = 1
	}
	return w
}

// Trajectory demodulates the pulse into consecutive windows of windowNs and
// returns the per-window IQ points for the first uptoNs of the pulse
// (uptoNs <= 0 means the full pulse). Partial trailing windows are dropped,
// matching the hardware's stream adapter.
func (c *Calibration) Trajectory(p *Pulse, windowNs, uptoNs float64) []IQ {
	if uptoNs <= 0 || uptoNs > c.DurationNs {
		uptoNs = c.DurationNs
	}
	w := c.WindowSamples(windowNs)
	limit := int(uptoNs * c.SampleRateGSPS)
	if limit > len(p.Samples) {
		limit = len(p.Samples)
	}
	var out []IQ
	for start := 0; start+w <= limit; start += w {
		out = append(out, Demodulate(p.Samples, start, w, c.Omega()))
	}
	return out
}

// CumulativeTrajectory returns the cumulative IQ integral evaluated at
// every windowNs boundary within the first uptoNs of the pulse: point i is
// the demodulation of samples [0, (i+1)·w). This is the trajectory of
// Figure 5 (b) — points drift toward the state's cluster center as the
// integration SNR grows with √t — and is what the trajectory predictor
// classifies. Computed in one pass over the samples.
func (c *Calibration) CumulativeTrajectory(p *Pulse, windowNs, uptoNs float64) []IQ {
	if uptoNs <= 0 || uptoNs > c.DurationNs {
		uptoNs = c.DurationNs
	}
	w := c.WindowSamples(windowNs)
	limit := int(uptoNs * c.SampleRateGSPS)
	if limit > len(p.Samples) {
		limit = len(p.Samples)
	}
	omega := c.Omega()
	ref := complex(1, 0)
	rot := cmplx.Rect(1, omega)
	var sumI, sumQ float64
	var out []IQ
	for k := 0; k < limit; k++ {
		cr, sr := real(ref), imag(ref)
		re, im := real(p.Samples[k]), imag(p.Samples[k])
		sumI += re*cr + im*sr
		sumQ += im*cr - re*sr
		ref *= rot
		if (k+1)%w == 0 {
			n := float64(k+1) + 1
			out = append(out, IQ{I: sumI / n, Q: sumQ / n})
		}
	}
	return out
}

// IntegratedIQ demodulates the entire first uptoNs of the pulse as a single
// window — the matched-filter point used for final state classification.
func (c *Calibration) IntegratedIQ(p *Pulse, uptoNs float64) IQ {
	if uptoNs <= 0 || uptoNs > c.DurationNs {
		uptoNs = c.DurationNs
	}
	limit := int(uptoNs * c.SampleRateGSPS)
	if limit > len(p.Samples) {
		limit = len(p.Samples)
	}
	return Demodulate(p.Samples, 0, limit, c.Omega())
}

// ExpectedCenters returns the noise-free demodulated IQ centers for states
// 0 and 1 (no relaxation), the analytic anchors the classifier calibrates
// around.
func (c *Calibration) ExpectedCenters() (c0, c1 IQ) {
	// With a_i = A e^{i(ωi+φ)}, demodulation yields approximately
	// (A cos φ, A sin φ) (up to the 1/(L+1) vs 1/L normalization).
	return IQ{c.Amp * math.Cos(-c.PhaseShift), c.Amp * math.Sin(-c.PhaseShift)},
		IQ{c.Amp * math.Cos(c.PhaseShift), c.Amp * math.Sin(c.PhaseShift)}
}
