package readout

import (
	"fmt"
	"sync"
)

// PulsePool recycles readout pulse records of one capture length across
// Monte-Carlo shots. A 2 µs record at 1 GSPS is 32 KiB of samples; the
// engine's hot loop previously allocated one per feedback site per shot
// (hundreds of MB/s of garbage at full throughput). SynthesizeInto
// overwrites every sample and all metadata, so a pooled pulse is
// indistinguishable from a freshly allocated one.
//
// Concurrency contract: PulsePool is safe for concurrent Get/Put from
// multiple shot workers. The *Pulse values themselves are not — each
// belongs to exactly one worker between Get and Put, and the engine's
// no-retention rule for controller.Shot.Pulse (see that field's docs) is
// what makes Put after Feedback safe.
type PulsePool struct {
	n    int
	pool sync.Pool
}

// NewPulsePool returns a pool of pulse records with n-sample capacity.
func NewPulsePool(n int) *PulsePool {
	if n < 1 {
		panic(fmt.Sprintf("readout: invalid pulse pool sample count %d", n))
	}
	p := &PulsePool{n: n}
	p.pool.New = func() interface{} {
		return &Pulse{Samples: make([]complex128, n)}
	}
	return p
}

// Samples returns the capture length the pool serves.
func (p *PulsePool) Samples() int { return p.n }

// Get returns a pulse record with capacity for the pool's capture length.
// Its contents are unspecified — the caller must synthesize into it before
// reading.
func (p *PulsePool) Get() *Pulse {
	return p.pool.Get().(*Pulse)
}

// Put returns a pulse to the pool. The caller must not touch it afterwards.
func (p *PulsePool) Put(pulse *Pulse) {
	if pulse == nil || cap(pulse.Samples) < p.n {
		return
	}
	p.pool.Put(pulse)
}
