package readout

import (
	"artery/internal/stats"
)

// Dataset is the synthetic stand-in for the paper's captured corpus of
// 4,000 readout pulses (§6.1): 1,000 training sequences for parameter
// fitting and 3,000 for latency/accuracy evaluation.
type Dataset struct {
	Cal   *Calibration
	Train []*Pulse
	Test  []*Pulse
	// Outcomes are the ground-truth branch outcomes (full-pulse
	// classification) for the corresponding Test pulses, filled by Label.
	TrainOutcomes []int
	TestOutcomes  []int
}

// Paper dataset sizing (§6.1).
const (
	DatasetSize  = 4000
	TrainSize    = 1000
	TestSize     = DatasetSize - TrainSize
	DefaultK     = 6    // branch-history registers
	DefaultWinNs = 30.0 // demodulation window length
)

// GenerateDataset synthesizes a pulse corpus with the given probability of
// preparing |1⟩ (use 0.5 for calibration corpora; workload-specific priors
// are applied by the workload generators). The split is 1,000/3,000 as in
// the paper.
func GenerateDataset(cal *Calibration, p1 float64, rng *stats.RNG) *Dataset {
	d := &Dataset{Cal: cal}
	for i := 0; i < DatasetSize; i++ {
		state := 0
		if rng.Bool(p1) {
			state = 1
		}
		p := cal.Synthesize(state, rng)
		if i < TrainSize {
			d.Train = append(d.Train, p)
		} else {
			d.Test = append(d.Test, p)
		}
	}
	return d
}

// Label computes the ground-truth outcomes of all pulses with classifier c.
func (d *Dataset) Label(c *Classifier) {
	d.TrainOutcomes = make([]int, len(d.Train))
	for i, p := range d.Train {
		d.TrainOutcomes[i] = c.ClassifyFull(p)
	}
	d.TestOutcomes = make([]int, len(d.Test))
	for i, p := range d.Test {
		d.TestOutcomes[i] = c.ClassifyFull(p)
	}
}

// Channel bundles everything one readout line needs at run time: the
// calibration, a trained classifier and a trained trajectory state table.
// It is what the feedback controller instantiates per qubit.
//
// Concurrency contract: Synthesize/Classify*/WindowBits/PRead1 are pure
// reads, so one Channel may be shared by all of an engine's shot workers.
// Training and tuning (Train, Table.Update, retuning the classifier) are
// not synchronized — do not run them while shots are in flight.
type Channel struct {
	Cal        *Calibration
	Classifier *Classifier
	Table      *StateTable
}

// NewChannel calibrates a full readout channel from a balanced training
// corpus: it generates the dataset, fits cluster centers, labels outcomes
// and pre-generates the trajectory state table.
func NewChannel(cal *Calibration, windowNs float64, k int, rng *stats.RNG) *Channel {
	return NewChannelWithTable(cal, windowNs, NewStateTable(k), rng)
}

// NewChannelWithTable calibrates a channel into a caller-provided (empty)
// state table — the hook the ablation experiments use to compare table
// configurations (single-bucket vs time-bucketed, smoothing strengths) on
// identical training data.
func NewChannelWithTable(cal *Calibration, windowNs float64, table *StateTable, rng *stats.RNG) *Channel {
	ds := GenerateDataset(cal, 0.5, rng)
	cls := NewClassifier(cal, windowNs, ds.Train)
	ds.Label(cls)
	bits := make([][]int, len(ds.Train))
	for i, p := range ds.Train {
		bits[i] = cls.WindowBits(p, 0)
	}
	table.Train(bits, ds.TrainOutcomes)
	return &Channel{Cal: cal, Classifier: cls, Table: table}
}

// Accuracy evaluates full-pulse classification accuracy of the channel on
// a labelled test set against prepared states (assignment fidelity).
func (ch *Channel) Accuracy(pulses []*Pulse) float64 {
	if len(pulses) == 0 {
		return 0
	}
	ok := 0
	for _, p := range pulses {
		if ch.Classifier.ClassifyFull(p) == p.Prepared {
			ok++
		}
	}
	return float64(ok) / float64(len(pulses))
}
