package readout

import (
	"testing"

	"artery/internal/stats"
)

func TestChannelPersistRoundTrip(t *testing.T) {
	rng := stats.NewRNG(40)
	ch := NewChannel(DefaultCalibration(), 30, 6, rng)
	data, err := MarshalChannel(ch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalChannel(data)
	if err != nil {
		t.Fatal(err)
	}
	// Classifier centers survive exactly.
	if got.Classifier.F0 != ch.Classifier.F0 || got.Classifier.F1 != ch.Classifier.F1 {
		t.Fatal("centers changed across round trip")
	}
	if got.Classifier.WindowNs != 30 {
		t.Fatal("window length lost")
	}
	// Table probabilities survive exactly for representative keys.
	keys := [][]int{{1}, {0, 1, 1}, {1, 1, 1, 1, 1, 1}, make([]int, 40)}
	for _, k := range keys {
		if got.Table.PRead1(k) != ch.Table.PRead1(k) {
			t.Fatalf("table probability changed for key %v", k)
		}
	}
	// The restored channel classifies pulses identically.
	prng := stats.NewRNG(41)
	for i := 0; i < 100; i++ {
		p := ch.Cal.Synthesize(i%2, prng)
		if got.Classifier.ClassifyFull(p) != ch.Classifier.ClassifyFull(p) {
			t.Fatal("restored classifier disagrees")
		}
	}
}

func TestChannelPersistRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalChannel([]byte("not a gob stream")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := MarshalChannel(nil); err == nil {
		t.Fatal("nil channel accepted")
	}
	if _, err := MarshalChannel(&Channel{}); err == nil {
		t.Fatal("incomplete channel accepted")
	}
}

func TestChannelPersistTruncated(t *testing.T) {
	rng := stats.NewRNG(42)
	ch := NewChannel(DefaultCalibration(), 30, 6, rng)
	data, err := MarshalChannel(ch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalChannel(data[:len(data)/2]); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestRestoredChannelDrivesPredictor(t *testing.T) {
	rng := stats.NewRNG(43)
	ch := NewChannel(DefaultCalibration(), 30, 6, rng)
	data, err := MarshalChannel(ch)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := UnmarshalChannel(data)
	if err != nil {
		t.Fatal(err)
	}
	// Accuracy of the restored channel matches the original.
	prng := stats.NewRNG(44)
	var pulses []*Pulse
	for i := 0; i < 200; i++ {
		pulses = append(pulses, ch.Cal.Synthesize(i%2, prng))
	}
	if a, b := ch.Accuracy(pulses), restored.Accuracy(pulses); a != b {
		t.Fatalf("accuracy changed: %v vs %v", a, b)
	}
}
