package readout

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"artery/internal/stats"
)

// This file implements persistence for calibrated readout channels: the
// classifier centers and the trained <trajectory, P_read_1> state table.
// On hardware the table is pre-generated when the system is initialized
// and reloaded at program start (§4); persisting it here means a tool can
// calibrate once and reuse the channel across runs.

// persistedChannel is the gob wire form of a Channel.
type persistedChannel struct {
	Cal      Calibration
	WindowNs float64
	F0, F1   IQ
	K        int
	Buckets  int
	// Counters flattened as [bucket][length][pattern] alpha/beta pairs.
	Alphas []float64
	Betas  []float64
}

// MarshalChannel serializes a calibrated channel.
func MarshalChannel(ch *Channel) ([]byte, error) {
	if ch == nil || ch.Classifier == nil || ch.Table == nil {
		return nil, fmt.Errorf("readout: cannot marshal incomplete channel")
	}
	p := persistedChannel{
		Cal:      *ch.Cal,
		WindowNs: ch.Classifier.WindowNs,
		F0:       ch.Classifier.F0,
		F1:       ch.Classifier.F1,
		K:        ch.Table.K,
		Buckets:  ch.Table.buckets,
	}
	for b := 0; b < ch.Table.buckets; b++ {
		for c := 1; c <= ch.Table.K; c++ {
			for i := range ch.Table.counters[b][c] {
				cnt := ch.Table.counters[b][c][i]
				p.Alphas = append(p.Alphas, cnt.Alpha)
				p.Betas = append(p.Betas, cnt.Beta)
			}
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		return nil, fmt.Errorf("readout: marshal channel: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalChannel reconstructs a channel from MarshalChannel's output.
func UnmarshalChannel(data []byte) (*Channel, error) {
	var p persistedChannel
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&p); err != nil {
		return nil, fmt.Errorf("readout: unmarshal channel: %w", err)
	}
	if p.K < 1 || p.K > 20 || p.Buckets < 1 || p.Buckets > MaxTimeBuckets {
		return nil, fmt.Errorf("readout: persisted table shape invalid (k=%d, buckets=%d)", p.K, p.Buckets)
	}
	cal := p.Cal
	cls := &Classifier{cal: &cal, WindowNs: p.WindowNs, F0: p.F0, F1: p.F1}
	cls.W0, cls.W1 = p.F0, p.F1
	table := NewStateTableOpts(p.K, p.Buckets, 1) // counters overwritten below
	idx := 0
	for b := 0; b < p.Buckets; b++ {
		for c := 1; c <= p.K; c++ {
			for i := range table.counters[b][c] {
				if idx >= len(p.Alphas) {
					return nil, fmt.Errorf("readout: persisted table truncated at counter %d", idx)
				}
				table.counters[b][c][i] = stats.BetaCounter{Alpha: p.Alphas[idx], Beta: p.Betas[idx]}
				idx++
			}
		}
	}
	if idx != len(p.Alphas) {
		return nil, fmt.Errorf("readout: persisted table has %d extra counters", len(p.Alphas)-idx)
	}
	return &Channel{Cal: &cal, Classifier: cls, Table: table}, nil
}
