package readout

import (
	"fmt"
	"math"
	"math/cmplx"

	"artery/internal/stats"
	"artery/internal/trace"
)

// Classifier assigns qubit states to demodulated IQ points by distance to
// calibrated cluster centers — the "state classification" unit of the
// feedback controller (Figure 7c). Separate centers are kept for
// single-window points and for the fully integrated pulse, because their
// normalizations differ.
type Classifier struct {
	cal      *Calibration
	WindowNs float64

	// Window-level cluster centers (means over training windows).
	W0, W1 IQ
	// Full-pulse integrated centers.
	F0, F1 IQ
}

// NewClassifier calibrates a classifier from training pulses with known
// prepared states. windowNs is the demodulation window length (paper
// default: 30 ns). Cluster centers are fit on the integrated IQ of clean
// (non-decayed) pulses; because the cumulative-integral trajectory shares
// the same expected centers at every length (the mean is
// length-normalized), the same pair of centers classifies both the
// mid-readout trajectory points and the final integrated point.
func NewClassifier(cal *Calibration, windowNs float64, train []*Pulse) *Classifier {
	c := &Classifier{cal: cal, WindowNs: windowNs}
	var f0, f1 IQ
	var m0, m1 int
	for _, p := range train {
		full := cal.IntegratedIQ(p, 0)
		// Centers use only pulses that did not decay mid-readout, the clean
		// calibration clusters.
		if p.Prepared == 1 && math.IsInf(p.DecayedAtNs, 1) {
			f1.I += full.I
			f1.Q += full.Q
			m1++
		} else if p.Prepared == 0 {
			f0.I += full.I
			f0.Q += full.Q
			m0++
		}
	}
	if m0 == 0 || m1 == 0 {
		panic("readout: training set must contain both prepared states")
	}
	c.F0 = IQ{f0.I / float64(m0), f0.Q / float64(m0)}
	c.F1 = IQ{f1.I / float64(m1), f1.Q / float64(m1)}
	c.W0, c.W1 = c.F0, c.F1
	return c
}

// ClassifyWindow returns the most probable state for one window IQ point.
func (c *Classifier) ClassifyWindow(pt IQ) int {
	if pt.Dist2(c.W1) < pt.Dist2(c.W0) {
		return 1
	}
	return 0
}

// ClassifyFull returns the state of a fully integrated pulse — the
// conventional end-of-readout classification every baseline controller
// waits for, and the ground-truth branch outcome of a shot.
func (c *Classifier) ClassifyFull(p *Pulse) int {
	pt := c.cal.IntegratedIQ(p, 0)
	if pt.Dist2(c.F1) < pt.Dist2(c.F0) {
		return 1
	}
	return 0
}

// ClassifyFullTrace is ClassifyFull with a trace hook: the classification
// is additionally recorded into span as a StageClassifyFull annotation
// covering the full readout window. Nil-safe via the span — the engine
// calls it unconditionally on its instrumented paths.
func (c *Classifier) ClassifyFullTrace(p *Pulse, span *trace.ShotSpan) int {
	state := c.ClassifyFull(p)
	span.Annotate(trace.StageClassifyFull, 0, c.cal.DurationNs, state, 0)
	return state
}

// WindowBits classifies the cumulative IQ trajectory at each window
// boundary of the first uptoNs of the pulse and returns the bit sequence
// (earliest first). Later bits integrate more of the pulse and are
// therefore more reliable — the √t SNR growth the predictor exploits.
func (c *Classifier) WindowBits(p *Pulse, uptoNs float64) []int {
	return c.AppendWindowBits(nil, p, uptoNs)
}

// AppendWindowBits is WindowBits appending into dst (which may be nil),
// reusing its capacity — the allocation-free form for per-shot scratch.
// The bits are computed in a single pass over the samples, classifying the
// running cumulative integral at each window boundary; the running sums are
// exactly CumulativeTrajectory's, so the bits are bit-identical to the
// two-pass trajectory-then-classify formulation.
func (c *Classifier) AppendWindowBits(dst []int, p *Pulse, uptoNs float64) []int {
	bits, _, _, _ := c.windowBits(dst, p, uptoNs)
	return bits
}

// windowBits is the shared single pass: it appends the per-boundary bits to
// dst and also returns the final running sums and sample limit, letting
// ClassifyFullAndBits finish the full-pulse classification from the same
// traversal.
func (c *Classifier) windowBits(dst []int, p *Pulse, uptoNs float64) (bits []int, sumI, sumQ float64, limit int) {
	if uptoNs <= 0 || uptoNs > c.cal.DurationNs {
		uptoNs = c.cal.DurationNs
	}
	w := c.cal.WindowSamples(c.WindowNs)
	limit = int(uptoNs * c.cal.SampleRateGSPS)
	if limit > len(p.Samples) {
		limit = len(p.Samples)
	}
	omega := c.cal.Omega()
	ref := complex(1, 0)
	rot := cmplx.Rect(1, omega)
	bits = dst[:0]
	for k := 0; k < limit; k++ {
		cr, sr := real(ref), imag(ref)
		re, im := real(p.Samples[k]), imag(p.Samples[k])
		sumI += re*cr + im*sr
		sumQ += im*cr - re*sr
		ref *= rot
		if (k+1)%w == 0 {
			n := float64(k+1) + 1
			bits = append(bits, c.ClassifyWindow(IQ{I: sumI / n, Q: sumQ / n}))
		}
	}
	return bits, sumI, sumQ, limit
}

// ClassifyFullAndBits computes the full-pulse classification and the
// window bits in one pass over the samples (appending bits into dst, which
// may be nil). The cumulative sums at the final sample are exactly the
// integrated-IQ sums — same operations, same order — so both results are
// bit-identical to calling ClassifyFull and WindowBits separately, for
// half the demodulation work.
func (c *Classifier) ClassifyFullAndBits(p *Pulse, dst []int) (truth int, bits []int) {
	bits, sumI, sumQ, limit := c.windowBits(dst, p, 0)
	norm := float64(limit) + 1
	pt := IQ{I: sumI / norm, Q: sumQ / norm}
	if pt.Dist2(c.F1) < pt.Dist2(c.F0) {
		truth = 1
	}
	return truth, bits
}

// ClassifyFullAndBitsTrace is ClassifyFullAndBits with ClassifyFullTrace's
// span annotation, emitted after the classification exactly as the
// separate calls would.
func (c *Classifier) ClassifyFullAndBitsTrace(p *Pulse, span *trace.ShotSpan, dst []int) (truth int, bits []int) {
	truth, bits = c.ClassifyFullAndBits(p, dst)
	span.Annotate(trace.StageClassifyFull, 0, c.cal.DurationNs, truth, 0)
	return truth, bits
}

// StateTable is the pre-generated <trajectory, P_read_1> table of §4: it
// maps the most-probable-state bits of the k most recent demodulation
// windows to the probability that the final readout is 1. Entries for
// shorter prefixes (fewer than k windows seen) are kept in per-length
// sub-tables so prediction can begin at the first window boundary.
//
// Because the trajectory bits classify *cumulative* IQ integrals, the same
// bit pattern carries more evidence later in the readout (the integration
// SNR grows with √t). The table is therefore additionally indexed by a
// coarse time bucket — one bucket per k windows, saturating at
// MaxTimeBuckets — so probabilities are calibrated for the moment the
// branch decider reads them. Without this, late windows would inflate the
// early buckets and the decider would commit overconfident predictions.
//
// The table is trained once at hardware initialization (here: from the
// training split of the pulse dataset) and optionally refined between
// programs via Update.
type StateTable struct {
	K int // number of branch-history registers (paper default: 6)
	// buckets is the time-bucket count (1 = the paper's single table).
	buckets int
	// counters[bucket][length][pattern]
	counters [][][]stats.BetaCounter
}

// MaxTimeBuckets bounds the table's time dimension; prefixes beyond
// K·MaxTimeBuckets windows share the final bucket.
const MaxTimeBuckets = 16

// tableSmoothing is the Beta pseudo-count mass per table bucket. It is
// deliberately stronger than Laplace smoothing: the branch decider compares
// bucket probabilities against thresholds near 0.91, and weakly-populated
// buckets whose estimate fluctuates across the threshold would otherwise
// commit systematically overconfident predictions (a winner's-curse bias —
// the decision rule selects exactly the buckets whose estimation error is
// positive).
const tableSmoothing = 5.0

// NewStateTable returns an empty table with history depth k and the
// default time bucketing and smoothing. It panics for k outside [1, 20].
func NewStateTable(k int) *StateTable {
	return NewStateTableOpts(k, MaxTimeBuckets, tableSmoothing)
}

// NewStateTableOpts returns an empty table with explicit time-bucket count
// (1 reproduces the paper's single time-invariant table — the ablation
// baseline) and Beta-smoothing pseudo-count mass. It panics for k outside
// [1, 20], buckets outside [1, MaxTimeBuckets] or smoothing <= 0.
func NewStateTableOpts(k, buckets int, smoothing float64) *StateTable {
	if k < 1 || k > 20 {
		panic(fmt.Sprintf("readout: unsupported history depth %d", k))
	}
	if buckets < 1 || buckets > MaxTimeBuckets {
		panic(fmt.Sprintf("readout: unsupported bucket count %d", buckets))
	}
	if smoothing <= 0 {
		panic("readout: smoothing must be positive")
	}
	t := &StateTable{K: k, buckets: buckets, counters: make([][][]stats.BetaCounter, buckets)}
	for b := range t.counters {
		t.counters[b] = make([][]stats.BetaCounter, k+1)
		for c := 1; c <= k; c++ {
			t.counters[b][c] = make([]stats.BetaCounter, 1<<uint(c))
			for i := range t.counters[b][c] {
				t.counters[b][c][i] = stats.BetaCounter{Alpha: smoothing, Beta: smoothing}
			}
		}
	}
	return t
}

// key packs the window-bit prefix into (time bucket, length, index): the
// pattern is the last up-to-K bits; the bucket advances every K windows.
func (t *StateTable) key(bits []int) (bucket, length, idx int) {
	n := len(bits)
	bucket = (n - 1) / t.K
	if bucket >= t.buckets {
		bucket = t.buckets - 1
	}
	length = n
	if length > t.K {
		bits = bits[length-t.K:]
		length = t.K
	}
	for _, b := range bits {
		idx = idx<<1 | (b & 1)
	}
	return bucket, length, idx
}

// Update records one observation: the window-bit prefix seen so far and the
// final readout outcome of that shot.
func (t *StateTable) Update(bits []int, finalOutcome int) {
	if len(bits) == 0 {
		return
	}
	b, l, idx := t.key(bits)
	t.counters[b][l][idx].Observe(finalOutcome == 1)
}

// Train fills the table from complete training shots: every prefix of each
// shot's window bits is attributed to its final outcome, mirroring the
// paper's offline pre-generation.
func (t *StateTable) Train(allBits [][]int, outcomes []int) {
	if len(allBits) != len(outcomes) {
		panic("readout: training bits/outcomes length mismatch")
	}
	for i, bits := range allBits {
		for n := 1; n <= len(bits); n++ {
			t.Update(bits[:n], outcomes[i])
		}
	}
}

// PRead1 returns P_read_1 for the current window-bit prefix. An empty
// prefix returns the uninformative 0.5.
func (t *StateTable) PRead1(bits []int) float64 {
	if len(bits) == 0 {
		return 0.5
	}
	b, l, idx := t.key(bits)
	return t.counters[b][l][idx].P()
}

// SizeBytes reports the BRAM footprint of the hardware table: the paper's
// 2^(k-3)·(k+16)-byte sizing (k pattern bits plus a 16-bit fixed-point
// probability per row) replicated across the time buckets required by the
// cumulative-trajectory calibration.
func (t *StateTable) SizeBytes() int {
	k := t.K
	return t.buckets * (1 << uint(k)) * (k + 16) / 8
}
