package readout

import (
	"fmt"
	"math"
	"math/cmplx"

	"artery/internal/stats"
)

// MuxGroup models frequency-multiplexed readout: on the evaluation device
// three qubits share one readout line (§6.1), each dispersively shifting
// its own intermediate-frequency tone. The captured waveform is the sum of
// the per-qubit tones plus line noise; each qubit's state is recovered by
// demodulating at its own carrier, with residual inter-tone beating
// appearing as extra classification noise (the multiplexing penalty the
// paper's 99.0 % readout calibration already absorbs).
type MuxGroup struct {
	Cals []*Calibration
}

// NewMuxGroup derives a group of n calibrations from base, spacing the
// carriers far enough apart that one 30 ns window integrates several beat
// periods. It panics for n outside [1, 8].
func NewMuxGroup(base *Calibration, n int) *MuxGroup {
	if n < 1 || n > 8 {
		panic(fmt.Sprintf("readout: unsupported mux group size %d", n))
	}
	g := &MuxGroup{}
	for k := 0; k < n; k++ {
		c := *base
		// Spacing of 1/15 cycles/sample: adjacent beat period 15 samples,
		// half a 30-sample window.
		c.CarrierCycles = base.CarrierCycles + float64(k)/15.0
		g.Cals = append(g.Cals, &c)
	}
	return g
}

// MuxPulse is one captured multiplexed readout record.
type MuxPulse struct {
	Samples  []complex128
	Prepared []int
	// DecayedAtNs per qubit (+Inf when it did not decay).
	DecayedAtNs []float64
}

// Synthesize captures one multiplexed readout of the group's qubits in the
// given prepared states.
func (g *MuxGroup) Synthesize(states []int, rng *stats.RNG) *MuxPulse {
	if len(states) != len(g.Cals) {
		panic(fmt.Sprintf("readout: %d states for %d multiplexed qubits", len(states), len(g.Cals)))
	}
	base := g.Cals[0]
	n := base.Samples()
	p := &MuxPulse{
		Samples:     make([]complex128, n),
		Prepared:    append([]int(nil), states...),
		DecayedAtNs: make([]float64, len(states)),
	}
	// Line noise is shared (one amplifier chain), applied once. The bulk
	// fill consumes the same draw stream as the per-sample Norm loop.
	rng.AddComplexNorm(p.Samples, nil, base.NoiseSigma)
	for k, cal := range g.Cals {
		state := states[k]
		if state != 0 && state != 1 {
			panic(fmt.Sprintf("readout: invalid state %d for mux qubit %d", state, k))
		}
		p.DecayedAtNs[k] = math.Inf(1)
		if state == 1 && !math.IsInf(cal.T1Ns, 1) {
			if t := rng.Exp(cal.T1Ns); t < cal.DurationNs {
				p.DecayedAtNs[k] = t
			}
		}
		if math.IsInf(p.DecayedAtNs[k], 1) {
			// Clean tone: accumulate the cached carrier template (bit-
			// identical to the incremental-phasor loop below).
			tone := carrierTemplate(cal, state, n)
			for i := 0; i < n; i++ {
				p.Samples[i] += tone[i]
			}
			continue
		}
		omega := cal.Omega()
		rot := cmplx.Rect(1, omega)
		phase0 := cmplx.Rect(cal.Amp, -cal.PhaseShift)
		phase1 := cmplx.Rect(cal.Amp, +cal.PhaseShift)
		cur := phase1
		excited := true
		for i := 0; i < n; i++ {
			if excited && float64(i)/cal.SampleRateGSPS >= p.DecayedAtNs[k] {
				cur = phase0 * cmplx.Rect(1, omega*float64(i))
				excited = false
			}
			p.Samples[i] += cur
			cur *= rot
		}
	}
	return p
}

// QubitPulse projects the multiplexed record onto qubit k's channel: the
// shared samples with qubit k's metadata, demodulatable at cal k's
// carrier. The other tones remain in the samples as structured
// interference.
func (p *MuxPulse) QubitPulse(k int) *Pulse {
	return &Pulse{
		Samples:     p.Samples,
		Prepared:    p.Prepared[k],
		DecayedAtNs: p.DecayedAtNs[k],
	}
}

// MuxChannel is a calibrated readout chain for one qubit of a multiplexed
// group: classifier centers are trained on multiplexed training pulses, so
// the inter-tone interference is absorbed into the calibration exactly as
// on hardware.
type MuxChannel struct {
	Group      *MuxGroup
	Index      int
	Classifier *Classifier
}

// CalibrateMux trains per-qubit classifiers for a multiplexed group from
// nTrain random multiplexed shots.
func CalibrateMux(g *MuxGroup, windowNs float64, nTrain int, rng *stats.RNG) []*MuxChannel {
	if nTrain < 10 {
		panic("readout: mux calibration needs at least 10 training shots")
	}
	perQubit := make([][]*Pulse, len(g.Cals))
	for i := 0; i < nTrain; i++ {
		states := make([]int, len(g.Cals))
		for k := range states {
			if rng.Bool(0.5) {
				states[k] = 1
			}
		}
		mp := g.Synthesize(states, rng)
		for k := range g.Cals {
			perQubit[k] = append(perQubit[k], mp.QubitPulse(k))
		}
	}
	out := make([]*MuxChannel, len(g.Cals))
	for k, cal := range g.Cals {
		out[k] = &MuxChannel{
			Group:      g,
			Index:      k,
			Classifier: NewClassifier(cal, windowNs, perQubit[k]),
		}
	}
	return out
}

// Classify returns qubit k's state from a multiplexed record. It rejects
// records that do not match the channel's group — a nil pulse, a per-qubit
// width different from the group size, or a sample count different from the
// group's capture length — instead of silently demodulating garbage (a
// width mismatch used to index out of range or classify another group's
// tones as this qubit's).
func (mc *MuxChannel) Classify(p *MuxPulse) (int, error) {
	if p == nil {
		return 0, fmt.Errorf("readout: mux classify of nil pulse")
	}
	n := len(mc.Group.Cals)
	if len(p.Prepared) != n || len(p.DecayedAtNs) != n {
		return 0, fmt.Errorf("readout: mux pulse width %d/%d does not match group size %d",
			len(p.Prepared), len(p.DecayedAtNs), n)
	}
	if want := mc.Group.Cals[0].Samples(); len(p.Samples) != want {
		return 0, fmt.Errorf("readout: mux pulse has %d samples, group captures %d",
			len(p.Samples), want)
	}
	return mc.Classifier.ClassifyFull(p.QubitPulse(mc.Index)), nil
}

// Accuracy measures assignment fidelity of this channel over random
// multiplexed shots. It panics if Classify rejects a pulse — impossible
// here, since every record is synthesized by the channel's own group.
func (mc *MuxChannel) Accuracy(shots int, rng *stats.RNG) float64 {
	if shots < 1 {
		return 0
	}
	ok := 0
	for i := 0; i < shots; i++ {
		states := make([]int, len(mc.Group.Cals))
		for k := range states {
			if rng.Bool(0.5) {
				states[k] = 1
			}
		}
		mp := mc.Group.Synthesize(states, rng)
		got, err := mc.Classify(mp)
		if err != nil {
			panic(fmt.Sprintf("readout: mux accuracy on self-synthesized pulse: %v", err))
		}
		if got == states[mc.Index] {
			ok++
		}
	}
	return float64(ok) / float64(shots)
}
