package readout

import (
	"math"
	"testing"

	"artery/internal/stats"
)

func TestMuxGroupCarriersDistinct(t *testing.T) {
	g := NewMuxGroup(DefaultCalibration(), 3)
	seen := map[float64]bool{}
	for _, c := range g.Cals {
		if seen[c.CarrierCycles] {
			t.Fatal("duplicate carrier frequency")
		}
		seen[c.CarrierCycles] = true
	}
}

func TestMuxGroupPanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewMuxGroup(DefaultCalibration(), 0) },
		func() { NewMuxGroup(DefaultCalibration(), 9) },
		func() { NewMuxGroup(DefaultCalibration(), 2).Synthesize([]int{1}, stats.NewRNG(1)) },
		func() { NewMuxGroup(DefaultCalibration(), 1).Synthesize([]int{2}, stats.NewRNG(1)) },
		func() { CalibrateMux(NewMuxGroup(DefaultCalibration(), 2), 30, 3, stats.NewRNG(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMuxSeparatesThreeQubits(t *testing.T) {
	// The paper's configuration: 3 qubits per readout line. Each qubit must
	// be recoverable from the shared waveform with high fidelity.
	g := NewMuxGroup(DefaultCalibration(), 3)
	rng := stats.NewRNG(2)
	chans := CalibrateMux(g, 30, 400, rng)
	for k, mc := range chans {
		acc := mc.Accuracy(300, rng)
		if acc < 0.95 {
			t.Fatalf("mux qubit %d assignment fidelity %v, want >= 0.95", k, acc)
		}
	}
}

func TestMuxStatesIndependent(t *testing.T) {
	// Flipping neighbor states must not flip qubit 0's classification:
	// classify the same noise realization under different neighbor states.
	g := NewMuxGroup(DefaultCalibration(), 3)
	rng := stats.NewRNG(3)
	chans := CalibrateMux(g, 30, 400, rng)
	mc := chans[0]
	agree := 0
	const trials = 150
	for i := 0; i < trials; i++ {
		mpA := g.Synthesize([]int{1, 0, 0}, rng)
		mpB := g.Synthesize([]int{1, 1, 1}, rng)
		a, errA := mc.Classify(mpA)
		b, errB := mc.Classify(mpB)
		if errA != nil || errB != nil {
			t.Fatalf("classify of own group's pulse failed: %v / %v", errA, errB)
		}
		if a == 1 {
			agree++
		}
		if b == 1 {
			agree++
		}
	}
	if frac := float64(agree) / (2 * trials); frac < 0.95 {
		t.Fatalf("qubit 0 classification degraded by neighbors: %v", frac)
	}
}

func TestMuxDecayRecorded(t *testing.T) {
	base := DefaultCalibration()
	base.T1Ns = 200 // decay almost surely
	g := NewMuxGroup(base, 2)
	rng := stats.NewRNG(4)
	mp := g.Synthesize([]int{1, 0}, rng)
	if math.IsInf(mp.DecayedAtNs[0], 1) {
		t.Fatal("fast-T1 qubit did not decay")
	}
	if !math.IsInf(mp.DecayedAtNs[1], 1) {
		t.Fatal("|0⟩ qubit decayed")
	}
}

func TestMuxQubitPulseMetadata(t *testing.T) {
	g := NewMuxGroup(DefaultCalibration(), 3)
	rng := stats.NewRNG(5)
	mp := g.Synthesize([]int{0, 1, 0}, rng)
	p1 := mp.QubitPulse(1)
	if p1.Prepared != 1 {
		t.Fatal("QubitPulse lost prepared state")
	}
	if len(p1.Samples) != g.Cals[0].Samples() {
		t.Fatal("QubitPulse sample count wrong")
	}
}

func TestMuxCrosstalkBoundedVsSingle(t *testing.T) {
	// Multiplexing costs some fidelity relative to a dedicated line, but
	// the penalty must be small (the device still calibrates to ~99 %).
	rng := stats.NewRNG(6)
	single := NewChannel(DefaultCalibration(), 30, 6, stats.NewRNG(7))
	var pulses []*Pulse
	for i := 0; i < 300; i++ {
		pulses = append(pulses, single.Cal.Synthesize(i%2, rng))
	}
	singleAcc := single.Accuracy(pulses)

	g := NewMuxGroup(DefaultCalibration(), 3)
	chans := CalibrateMux(g, 30, 400, rng)
	muxAcc := chans[1].Accuracy(300, rng)
	if muxAcc < singleAcc-0.05 {
		t.Fatalf("multiplexing penalty too large: %v vs %v", muxAcc, singleAcc)
	}
}

func TestMuxClassifyRejectsMalformedPulses(t *testing.T) {
	g := NewMuxGroup(DefaultCalibration(), 3)
	rng := stats.NewRNG(8)
	mc := CalibrateMux(g, 30, 100, rng)[0]

	if _, err := mc.Classify(nil); err == nil {
		t.Error("nil pulse accepted")
	}

	// A record from a differently sized group: per-qubit width mismatch.
	g2 := NewMuxGroup(DefaultCalibration(), 2)
	mp2 := g2.Synthesize([]int{1, 0}, rng)
	if _, err := mc.Classify(mp2); err == nil {
		t.Error("pulse of a 2-qubit group accepted by a 3-qubit channel")
	}

	// Matching width but truncated capture.
	mp := g.Synthesize([]int{1, 0, 1}, rng)
	short := &MuxPulse{
		Samples:     mp.Samples[:len(mp.Samples)/2],
		Prepared:    mp.Prepared,
		DecayedAtNs: mp.DecayedAtNs,
	}
	if _, err := mc.Classify(short); err == nil {
		t.Error("truncated capture accepted")
	}

	// The untouched record still classifies.
	if got, err := mc.Classify(mp); err != nil {
		t.Fatalf("well-formed pulse rejected: %v", err)
	} else if got != 0 && got != 1 {
		t.Fatalf("classification %d outside {0,1}", got)
	}
}
