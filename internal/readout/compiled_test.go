package readout

import (
	"math"
	"math/cmplx"
	"testing"

	"artery/internal/stats"
)

// synthesizeScalarRef replicates the pre-template synthesis loop exactly:
// incremental phasor plus two scalar Norm draws per sample, for any pulse
// (clean or decayed). It is the frozen reference SynthesizeInto must match
// bit for bit.
func synthesizeScalarRef(c *Calibration, state int, rng *stats.RNG) *Pulse {
	n := c.Samples()
	p := &Pulse{Samples: make([]complex128, n), Prepared: state, DecayedAtNs: math.Inf(1)}
	if state == 1 && !math.IsInf(c.T1Ns, 1) {
		if t := rng.Exp(c.T1Ns); t < c.DurationNs {
			p.DecayedAtNs = t
		}
	}
	omega := c.Omega()
	rot := cmplx.Rect(1, omega)
	phase0 := cmplx.Rect(c.Amp, -c.PhaseShift)
	phase1 := cmplx.Rect(c.Amp, +c.PhaseShift)
	cur := phase0
	if state == 1 {
		cur = phase1
	}
	excited := state == 1
	for i := 0; i < n; i++ {
		if excited && float64(i)/c.SampleRateGSPS >= p.DecayedAtNs {
			cur = phase0 * cmplx.Rect(1, omega*float64(i))
			excited = false
		}
		noise := complex(rng.Norm()*c.NoiseSigma, rng.Norm()*c.NoiseSigma)
		p.Samples[i] = cur + noise
		cur *= rot
	}
	return p
}

func pulsesBitEqual(a, b *Pulse) bool {
	if a.Prepared != b.Prepared ||
		math.Float64bits(a.DecayedAtNs) != math.Float64bits(b.DecayedAtNs) ||
		len(a.Samples) != len(b.Samples) {
		return false
	}
	for i := range a.Samples {
		if math.Float64bits(real(a.Samples[i])) != math.Float64bits(real(b.Samples[i])) ||
			math.Float64bits(imag(a.Samples[i])) != math.Float64bits(imag(b.Samples[i])) {
			return false
		}
	}
	return true
}

// TestSynthesizeTemplateBitIdenticalToScalar pins the cached-template +
// bulk-noise synthesis against the original scalar loop, over enough
// prepared-|1⟩ shots to hit the T1-decay tail (which takes the scalar
// path) as well as the clean template path, for both states.
func TestSynthesizeTemplateBitIdenticalToScalar(t *testing.T) {
	c := DefaultCalibration()
	c.T1Ns = 20_000 // ~10% decay probability: the tail shows up in 200 shots
	decayed := 0
	rngA := stats.NewRNG(77)
	rngB := stats.NewRNG(77)
	for shot := 0; shot < 200; shot++ {
		state := shot % 2
		got := c.Synthesize(state, rngA)
		want := synthesizeScalarRef(c, state, rngB)
		if !pulsesBitEqual(got, want) {
			t.Fatalf("shot %d (state %d, decayed=%v): template synthesis diverged bitwise",
				shot, state, !math.IsInf(got.DecayedAtNs, 1))
		}
		if !math.IsInf(got.DecayedAtNs, 1) {
			decayed++
		}
	}
	if decayed == 0 {
		t.Fatal("no decayed pulse exercised the scalar fallback path")
	}
}

// TestSynthesizeIntoMatchesSynthesize checks the pooled form against the
// allocating form, including reuse of a dirty recycled record.
func TestSynthesizeIntoMatchesSynthesize(t *testing.T) {
	c := DefaultCalibration()
	rngA := stats.NewRNG(5)
	rngB := stats.NewRNG(5)
	reused := &Pulse{Samples: make([]complex128, c.Samples()), Prepared: 1, DecayedAtNs: 42}
	for i := range reused.Samples {
		reused.Samples[i] = complex(1e9, -1e9) // stale garbage must vanish
	}
	for shot := 0; shot < 20; shot++ {
		state := shot % 2
		fresh := c.Synthesize(state, rngA)
		c.SynthesizeInto(reused, state, rngB)
		if !pulsesBitEqual(fresh, reused) {
			t.Fatalf("shot %d: SynthesizeInto diverged from Synthesize", shot)
		}
	}
}

// TestClassifyFullAndBitsMatchesSeparateCalls pins the one-pass fused
// demodulation against ClassifyFull + WindowBits called separately.
func TestClassifyFullAndBitsMatchesSeparateCalls(t *testing.T) {
	cal := DefaultCalibration()
	rng := stats.NewRNG(9)
	cl := NewClassifier(cal, 30, trainingPulses(cal, 200, stats.NewRNG(1)))
	dst := make([]int, 0, 128)
	for shot := 0; shot < 50; shot++ {
		p := cal.Synthesize(shot%2, rng)
		wantTruth := cl.ClassifyFull(p)
		wantBits := cl.WindowBits(p, 0)
		gotTruth, gotBits := cl.ClassifyFullAndBits(p, dst[:0])
		if gotTruth != wantTruth {
			t.Fatalf("shot %d: fused truth %d != separate %d", shot, gotTruth, wantTruth)
		}
		if len(gotBits) != len(wantBits) {
			t.Fatalf("shot %d: fused %d bits != separate %d", shot, len(gotBits), len(wantBits))
		}
		for i := range wantBits {
			if gotBits[i] != wantBits[i] {
				t.Fatalf("shot %d: bit %d differs", shot, i)
			}
		}
	}
}

// trainingPulses synthesizes a balanced training set.
func trainingPulses(cal *Calibration, n int, rng *stats.RNG) []*Pulse {
	out := make([]*Pulse, n)
	for i := range out {
		out[i] = cal.Synthesize(i%2, rng)
	}
	return out
}

// TestSynthesizeIntoZeroAllocsWarm asserts the pooled synthesis hot path
// allocates nothing once the carrier template is cached, for the dominant
// (non-decayed) pulse population.
func TestSynthesizeIntoZeroAllocsWarm(t *testing.T) {
	c := DefaultCalibration()
	c.T1Ns = math.Inf(1) // no decay: every shot takes the template path
	rng := stats.NewRNG(4)
	p := &Pulse{Samples: make([]complex128, c.Samples())}
	c.SynthesizeInto(p, 1, rng) // warm the template cache
	if n := testing.AllocsPerRun(20, func() { c.SynthesizeInto(p, 1, rng) }); n != 0 {
		t.Fatalf("warm SynthesizeInto allocates %.1f times per call, want 0", n)
	}
}

// TestPulsePoolRoundTrip covers the pool contract: wrong-capacity and nil
// records are rejected, recycled ones come back usable.
func TestPulsePoolRoundTrip(t *testing.T) {
	pp := NewPulsePool(100)
	if pp.Samples() != 100 {
		t.Fatalf("pool reports %d samples, want 100", pp.Samples())
	}
	p := pp.Get()
	if cap(p.Samples) < 100 {
		t.Fatalf("pooled pulse has capacity %d, want >= 100", cap(p.Samples))
	}
	pp.Put(p)
	pp.Put(nil)                                     // ignored
	pp.Put(&Pulse{Samples: make([]complex128, 10)}) // wrong capacity: dropped
	if q := pp.Get(); cap(q.Samples) < 100 {
		t.Fatalf("pool returned an undersized record (cap %d)", cap(q.Samples))
	}
}

func TestPulsePoolPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPulsePool(0) did not panic")
		}
	}()
	NewPulsePool(0)
}

// BenchmarkReadoutPulseGen measures the synthesis hot path — the dominant
// cost of every engine shot (~80% of CPU before template caching).
func BenchmarkReadoutPulseGen(b *testing.B) {
	c := DefaultCalibration()
	rng := stats.NewRNG(2)
	b.Run("into-pooled", func(b *testing.B) {
		p := &Pulse{Samples: make([]complex128, c.Samples())}
		c.SynthesizeInto(p, 1, rng) // warm template
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.SynthesizeInto(p, i&1, rng)
		}
	})
	b.Run("alloc-per-shot", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = c.Synthesize(i&1, rng)
		}
	})
}

// BenchmarkClassifyFullAndBits measures the fused one-pass demodulation
// against the separate two-pass calls it replaced.
func BenchmarkClassifyFullAndBits(b *testing.B) {
	cal := DefaultCalibration()
	cl := NewClassifier(cal, 30, trainingPulses(cal, 100, stats.NewRNG(1)))
	p := cal.Synthesize(1, stats.NewRNG(2))
	dst := make([]int, 0, 128)
	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, dst = cl.ClassifyFullAndBits(p, dst[:0])
		}
	})
	b.Run("separate", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = cl.ClassifyFull(p)
			dst = cl.AppendWindowBits(dst[:0], p, 0)
		}
	})
}
