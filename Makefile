# Verification and benchmark targets. `make tier1` is the repository's
# baseline gate; `make ci` adds vet and the race detector over the
# concurrent engine/experiment paths (tier-2 verify, see ROADMAP.md).

GO ?= go

.PHONY: tier1 ci bench-engine bench

tier1:
	$(GO) build ./...
	$(GO) test ./...

ci: tier1
	$(GO) vet ./...
	$(GO) test -race ./...

# Regenerate the engine-throughput snapshot (BENCH_engine.json).
bench-engine:
	$(GO) run ./cmd/artery-bench -engine-bench BENCH_engine.json -shots 300

# Full evaluation benchmarks (tables/figures + engine throughput).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .
