# Verification and benchmark targets. `make tier1` is the repository's
# baseline gate; `make ci` adds vet and the race detector over the
# concurrent engine/experiment paths (tier-2 verify, see ROADMAP.md).

GO ?= go
FUZZTIME ?= 10s
FAULT_COVER_FLOOR ?= 80.0
SERVER_COVER_FLOOR ?= 80.0
STABILIZER_COVER_FLOOR ?= 85.0
STORE_COVER_FLOOR ?= 85.0
CHAOS_COVER_FLOOR ?= 85.0
# Allowed fractional throughput loss of the (disabled) tracing hooks vs
# the BENCH_engine.json snapshot.
TRACE_OVERHEAD_TOL ?= 0.01

.PHONY: tier1 ci fuzz-smoke cover-fault cover-server cover-stabilizer cover-store cover-chaos backend-diff serve-smoke cluster-smoke crash-smoke chaos-smoke trace-overhead bench-engine bench-store bench bench-regress bench-baseline profile

tier1:
	$(GO) build ./...
	$(GO) test ./...

ci: tier1
	$(GO) vet ./...
	$(GO) test -race -timeout 30m ./...
	$(MAKE) backend-diff
	$(MAKE) fuzz-smoke
	$(MAKE) cover-fault
	$(MAKE) cover-server
	$(MAKE) cover-stabilizer
	$(MAKE) cover-store
	$(MAKE) cover-chaos
	$(MAKE) trace-overhead
	$(MAKE) bench-regress
	$(MAKE) serve-smoke
	$(MAKE) cluster-smoke
	$(MAKE) crash-smoke
	$(MAKE) chaos-smoke

# Short fuzzing pass over the pulse codecs and the compiled-vs-interpreted
# circuit differential (one -fuzz target per invocation, as the go tool
# requires).
fuzz-smoke:
	$(GO) test ./internal/pulse -run '^$$' -fuzz '^FuzzCodecRoundTripHuffman$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/pulse -run '^$$' -fuzz '^FuzzCodecRoundTripRLE$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/pulse -run '^$$' -fuzz '^FuzzCodecRoundTripCombined$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/circuit -run '^$$' -fuzz '^FuzzCompiledVsInterpreted$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzBackendVsStateVector$$' -fuzztime $(FUZZTIME)

# Statement-coverage floor for the fault-injection subsystem.
cover-fault:
	$(GO) test -coverprofile=/tmp/fault.cover ./internal/fault
	@$(GO) tool cover -func=/tmp/fault.cover | awk -v floor=$(FAULT_COVER_FLOOR) \
		'/^total:/ { sub(/%/, "", $$3); printf "internal/fault coverage: %s%% (floor %s%%)\n", $$3, floor; \
		if ($$3 + 0 < floor + 0) { print "coverage below floor"; exit 1 } }'

# Statement-coverage floor for the job-service subsystem.
cover-server:
	$(GO) test -coverprofile=/tmp/server.cover ./internal/server
	@$(GO) tool cover -func=/tmp/server.cover | awk -v floor=$(SERVER_COVER_FLOOR) \
		'/^total:/ { sub(/%/, "", $$3); printf "internal/server coverage: %s%% (floor %s%%)\n", $$3, floor; \
		if ($$3 + 0 < floor + 0) { print "coverage below floor"; exit 1 } }'

# Statement-coverage floor for the stabilizer-tableau backend.
cover-stabilizer:
	$(GO) test -coverprofile=/tmp/stabilizer.cover ./internal/stabilizer
	@$(GO) tool cover -func=/tmp/stabilizer.cover | awk -v floor=$(STABILIZER_COVER_FLOOR) \
		'/^total:/ { sub(/%/, "", $$3); printf "internal/stabilizer coverage: %s%% (floor %s%%)\n", $$3, floor; \
		if ($$3 + 0 < floor + 0) { print "coverage below floor"; exit 1 } }'

# Statement-coverage floor for the durable job store (WAL + recovery).
cover-store:
	$(GO) test -coverprofile=/tmp/store.cover ./internal/store
	@$(GO) tool cover -func=/tmp/store.cover | awk -v floor=$(STORE_COVER_FLOOR) \
		'/^total:/ { sub(/%/, "", $$3); printf "internal/store coverage: %s%% (floor %s%%)\n", $$3, floor; \
		if ($$3 + 0 < floor + 0) { print "coverage below floor"; exit 1 } }'

# Statement-coverage floor for the deterministic fault proxy.
cover-chaos:
	$(GO) test -coverprofile=/tmp/chaos.cover ./internal/chaos
	@$(GO) tool cover -func=/tmp/chaos.cover | awk -v floor=$(CHAOS_COVER_FLOOR) \
		'/^total:/ { sub(/%/, "", $$3); printf "internal/chaos coverage: %s%% (floor %s%%)\n", $$3, floor; \
		if ($$3 + 0 < floor + 0) { print "coverage below floor"; exit 1 } }'

# Explicit run of the engine-level backend differential suite: both
# backends must produce bit-identical measurement records and counters
# for every Clifford workload at workers 1/4/8.
backend-diff:
	$(GO) test ./internal/core -run '^TestBackendDifferential' -v -count=1

# End-to-end service gate: boot arteryd on an ephemeral port, drive it
# with the loadgen (concurrent clients, zero dropped jobs, every 429 must
# carry Retry-After, resubmission must reproduce result bytes), check
# /metrics, then SIGTERM and require a clean drain.
serve-smoke:
	bash scripts/serve_smoke.sh

# Multi-node gate: three backend arteryd nodes behind a scatter-gather
# coordinator, driven by the loadgen; the coordinator's result bytes
# must equal a single node's (bit-identical sharded merge), the shard
# counters must appear on /metrics, and a SIGTERM fleet shutdown must
# drain every process cleanly.
cluster-smoke:
	bash scripts/cluster_smoke.sh

# Durability gate: kill -9 an arteryd mid-job, restart it on the same
# data dir, and require the recovered result and event stream to be
# byte-identical to an uninterrupted clean run; then the same for a
# journal-backed coordinator whose backend is killed and revived.
crash-smoke:
	bash scripts/crash_smoke.sh

# Resilience gate: three backends each behind a deterministic chaos
# proxy at escalating fault rates, a coordinator with hedging and
# breakers on top, loadgen through the chaos, results diffed against a
# clean direct run (must be byte-identical), then a clean fleet drain.
chaos-smoke:
	bash scripts/chaos_smoke.sh

# Gate: the tracing layer's disabled hooks must cost < 1% throughput vs
# the BENCH_engine.json snapshot, and enabling tracing must not change
# RunResult. Regenerate the snapshot on this machine (`make bench-engine`)
# before relying on the comparison.
trace-overhead:
	$(GO) run ./cmd/artery-bench -trace-overhead BENCH_engine.json -tolerance $(TRACE_OVERHEAD_TOL)

# Gate: the compiled-execution micro-benchmarks (kernels, fusion, pulse
# synthesis, fused classification) must stay within BENCH_REGRESS_TOL of
# the checked-in baseline, and allocation-free paths must stay that way.
# Uses benchstat for reporting when installed; pass/fail comes from the
# script's built-in comparator. Refresh with `make bench-baseline`.
bench-regress:
	bash scripts/bench_regress.sh

# Re-measure the micro-benchmark baseline on this machine.
bench-baseline:
	bash scripts/bench_regress.sh --update

# CPU + heap profile of the engine hot path (see scripts/profile.sh).
profile:
	bash scripts/profile.sh

# Regenerate the engine-throughput snapshot (BENCH_engine.json).
bench-engine:
	$(GO) run ./cmd/artery-bench -engine-bench BENCH_engine.json -shots 300

# Regenerate the durable-store journal snapshot (BENCH_store.json).
bench-store:
	$(GO) run ./cmd/artery-bench -store-bench BENCH_store.json

# Full evaluation benchmarks (tables/figures + engine throughput).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .
