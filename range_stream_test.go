package artery_test

import (
	"context"
	"math"
	"reflect"
	"testing"

	"artery"
)

// rangeStream runs the global shot range [offset, offset+shots) on a
// fresh system (same seed) and returns its updates, NaN-normalized so
// DeepEqual can compare them.
func rangeStream(t *testing.T, offset, shots, workers int) []artery.ShotUpdate {
	t.Helper()
	sys := artery.MustNew(artery.WithSeed(11), artery.WithoutStateSim(), artery.WithWorkers(workers))
	var updates []artery.ShotUpdate
	rep, err := sys.RunRangeStream(context.Background(), "ARTERY", artery.QRW(3), offset, shots, func(u artery.ShotUpdate) {
		if math.IsNaN(u.Fidelity) {
			u.Fidelity = -1
		}
		updates = append(updates, u)
	})
	if err != nil {
		t.Fatalf("RunRangeStream([%d,%d)): %v", offset, offset+shots, err)
	}
	if rep.Shots != shots {
		t.Fatalf("RunRangeStream([%d,%d)) reported %d shots", offset, offset+shots, rep.Shots)
	}
	return updates
}

// TestRunRangeStreamShardsBitIdentical is the facade-level sharding
// contract: contiguous range runs on fresh same-seed systems concatenate
// to the unsharded update stream — including each update's ordered
// per-stage deltas — and updates carry global shot indices.
func TestRunRangeStreamShardsBitIdentical(t *testing.T) {
	const shots = 30
	full := rangeStream(t, 0, shots, 2)
	if len(full) != shots {
		t.Fatalf("full stream has %d updates, want %d", len(full), shots)
	}
	for _, split := range [][]int{{0, 11, shots}, {0, 1, 29, shots}} {
		var got []artery.ShotUpdate
		for s := 0; s+1 < len(split); s++ {
			got = append(got, rangeStream(t, split[s], split[s+1]-split[s], 3)...)
		}
		if !reflect.DeepEqual(got, full) {
			t.Fatalf("split %v: concatenated range streams differ from the full stream", split)
		}
	}
	for i, u := range full {
		if u.Shot != i {
			t.Fatalf("update %d carries shot %d", i, u.Shot)
		}
		if len(u.Stages) == 0 || u.Stages[0].Stage != "payload" {
			t.Fatalf("update %d stage deltas %+v: want payload first", i, u.Stages)
		}
	}
	// Offset updates carry global indices.
	off := rangeStream(t, 7, 3, 1)
	for i, u := range off {
		if u.Shot != 7+i {
			t.Fatalf("offset update %d carries shot %d, want %d", i, u.Shot, 7+i)
		}
	}
}

// TestRunRangeStreamRejectsNegativeOffset checks the typed error path.
func TestRunRangeStreamRejectsNegativeOffset(t *testing.T) {
	sys := artery.MustNew(artery.WithoutStateSim())
	_, err := sys.RunRangeStream(context.Background(), "ARTERY", artery.QRW(2), -1, 5, nil)
	if err == nil {
		t.Fatal("negative offset accepted")
	}
}
