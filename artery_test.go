package artery

import (
	"math"
	"strings"
	"testing"
)

// one shared system: calibration is the expensive step.
var sys = MustNew(WithSeed(7), WithoutStateSim())

func TestNewDefaults(t *testing.T) {
	s := MustNew()
	if s.opts.Seed != 1 || s.opts.WindowNs != 30 || s.opts.HistoryDepth != 6 || s.opts.Theta != 0.91 {
		t.Fatalf("defaults wrong: %+v", s.opts)
	}
}

func TestRunProducesReport(t *testing.T) {
	r := sys.Run(QRW(2), 30)
	if r.Controller != "ARTERY" || r.Shots != 30 {
		t.Fatalf("report metadata wrong: %+v", r)
	}
	if r.MeanLatencyUs <= 0 {
		t.Fatal("no latency")
	}
	if r.Accuracy < 0.8 {
		t.Fatalf("accuracy %v", r.Accuracy)
	}
	if !math.IsNaN(r.Fidelity) {
		t.Fatal("fidelity should be NaN with state sim disabled")
	}
}

func TestCompareCoversAllControllers(t *testing.T) {
	reports := sys.Compare(RCNOT(1), 20)
	if len(reports) != 5 {
		t.Fatalf("%d reports", len(reports))
	}
	names := map[string]bool{}
	for _, r := range reports {
		names[r.Controller] = true
	}
	for _, want := range ControllerNames() {
		if !names[want] {
			t.Fatalf("missing controller %s", want)
		}
	}
	// ARTERY (index 0) must be the fastest.
	for _, r := range reports[1:] {
		if reports[0].MeanLatencyUs >= r.MeanLatencyUs {
			t.Fatalf("ARTERY (%v) not faster than %s (%v)",
				reports[0].MeanLatencyUs, r.Controller, r.MeanLatencyUs)
		}
	}
}

func TestRunWithUnknownControllerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown controller accepted")
		}
	}()
	sys.RunWith("nope", QRW(1), 1)
}

func TestPredictShotTrace(t *testing.T) {
	tr := sys.PredictShot(1, 0.9)
	if len(tr.Posterior) == 0 {
		t.Fatal("empty posterior trace")
	}
	if tr.TimeUs <= 0 || tr.TimeUs > 2.0 {
		t.Fatalf("decision time %v µs out of range", tr.TimeUs)
	}
	for _, pt := range tr.Posterior {
		if pt[1] < 0 || pt[1] > 1 {
			t.Fatalf("posterior %v out of [0,1]", pt[1])
		}
	}
}

func TestWorkloadConstructors(t *testing.T) {
	for _, wl := range []*Workload{
		QRW(3), RCNOT(2), DQT(2), RUSQNN(2), Reset(3), Random(25, 1), QEC(1),
	} {
		if err := wl.Validate(); err != nil {
			t.Errorf("%s: %v", wl.Name, err)
		}
	}
}

func TestReportString(t *testing.T) {
	r := Report{Workload: "QRW-5", Controller: "ARTERY", MeanLatencyUs: 6.1, Accuracy: 0.93, CommitRate: 0.9, Fidelity: 0.88}
	s := r.String()
	if !strings.Contains(s, "QRW-5") || !strings.Contains(s, "ARTERY") {
		t.Fatalf("report string %q", s)
	}
}

func TestFidelityAvailableWithStateSim(t *testing.T) {
	s := MustNew(WithSeed(11))
	r := s.Run(QRW(2), 10)
	if math.IsNaN(r.Fidelity) || r.Fidelity <= 0 {
		t.Fatalf("fidelity %v", r.Fidelity)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a := MustNew(WithSeed(3), WithoutStateSim()).Run(QRW(2), 20)
	b := MustNew(WithSeed(3), WithoutStateSim()).Run(QRW(2), 20)
	if a.MeanLatencyUs != b.MeanLatencyUs || a.Accuracy != b.Accuracy {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
}

func TestModeAblationAffectsLatency(t *testing.T) {
	// Trajectory-only must be slower than combined on a skewed workload
	// (Figure 14's direction). 200 shots keeps the gap well clear of
	// Monte-Carlo noise across seeds.
	comb := MustNew(WithSeed(5), WithoutStateSim())
	traj := MustNew(WithSeed(5), WithMode(ModeTrajectory), WithoutStateSim())
	wl := RCNOT(2)
	rc := comb.Run(wl, 200)
	rt := traj.Run(wl, 200)
	if rc.MeanLatencyUs >= rt.MeanLatencyUs {
		t.Fatalf("combined (%v) not faster than trajectory-only (%v)",
			rc.MeanLatencyUs, rt.MeanLatencyUs)
	}
}

func TestLogicalErrorRateFacade(t *testing.T) {
	// Noiseless memory never fails; noisy memory does.
	if ler := LogicalErrorRate(5, 200, 0, 0, 1); ler != 0 {
		t.Fatalf("noiseless LER %v", ler)
	}
	ler := LogicalErrorRate(10, 800, 0.03, 0.01, 2)
	if ler <= 0 || ler >= 0.6 {
		t.Fatalf("noisy LER %v out of plausible range", ler)
	}
}

func TestCyclePDataMonotone(t *testing.T) {
	fast := CyclePData(2.31, 1.0)
	slow := CyclePData(2.45, 1.9)
	if slow <= fast {
		t.Fatalf("CyclePData not monotone: %v vs %v", fast, slow)
	}
	if fast < 0.004 {
		t.Fatal("gate floor missing")
	}
}

func TestCircuitLevelLogicalErrorRateFacade(t *testing.T) {
	if ler := CircuitLevelLogicalErrorRate(3, 4, 60, 0, 0, 0, 3); ler != 0 {
		t.Fatalf("noiseless circuit-level LER %v", ler)
	}
	ler := CircuitLevelLogicalErrorRate(3, 6, 300, 0.004, 0.01, 0.02, 4)
	if ler <= 0 || ler >= 0.6 {
		t.Fatalf("circuit-level LER %v out of plausible range", ler)
	}
}

func TestTuneThresholdFacade(t *testing.T) {
	theta, latUs, acc, err := sys.TuneThreshold(0.3, 300)
	if err != nil {
		t.Fatal(err)
	}
	if theta <= 0.5 || theta >= 1 {
		t.Fatalf("theta %v", theta)
	}
	if latUs <= 0 || latUs >= 2.16 {
		t.Fatalf("latency %v µs", latUs)
	}
	if acc < 0.85 {
		t.Fatalf("accuracy %v", acc)
	}
}

func TestDynamicalDecouplingOption(t *testing.T) {
	// With quasi-static dephasing, the DD option must improve fidelity.
	base := Options{Seed: 31, QuasiStaticSigma: 2e-4}
	plain, err := FromOptions(base)
	if err != nil {
		t.Fatal(err)
	}
	ddOpts := base
	ddOpts.DynamicalDecoupling = true
	dd, err := FromOptions(ddOpts)
	if err != nil {
		t.Fatal(err)
	}
	wl := QRW(10)
	fPlain := plain.RunWith("QubiC", wl, 40).Fidelity
	fDD := dd.RunWith("QubiC", wl, 40).Fidelity
	if fDD <= fPlain {
		t.Fatalf("DD option did not help: %v vs %v", fDD, fPlain)
	}
}
