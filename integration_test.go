package artery

// integration_test.go drives the full stack end to end, crossing every
// subsystem boundary in one scenario per test — the documentation-grade
// checks a downstream user would write first.

import (
	"math"
	"strings"
	"testing"

	"artery/internal/circuit"
	"artery/internal/pulse"
	"artery/internal/readout"
	"artery/internal/stats"
)

// TestIntegrationPredictCompileCompressRun walks one workload through
// serialization, pulse compilation, compression and execution.
func TestIntegrationPredictCompileCompressRun(t *testing.T) {
	wl := RCNOT(2)

	// 1. The circuit round-trips through the QASM dialect.
	qasm := circuit.WriteQASM(wl.Circuit)
	parsed, err := circuit.ParseQASM(qasm)
	if err != nil {
		t.Fatalf("qasm round trip: %v", err)
	}
	if len(parsed.Ins) != len(wl.Circuit.Ins) {
		t.Fatal("qasm round trip changed instruction count")
	}

	// 2. Pre-execution analysis classifies its sites as case 1.
	for _, a := range circuit.AnalyzeAll(parsed) {
		if !a.Case.PreExecutable() {
			t.Fatalf("site unexpectedly not pre-executable: %v", a.Case)
		}
	}

	// 3. Its control pulses compile and compress within the on-chip budget.
	lib := pulse.BuildLibrary(parsed, pulse.CombinedCodec{})
	if lib.Len() == 0 || lib.StoredBytes() > 1_400_000 {
		t.Fatalf("pulse library: %d entries, %d bytes", lib.Len(), lib.StoredBytes())
	}
	streams := pulse.CompileCircuit(parsed)
	rep := pulse.AnalyzeSampling(pulse.CombinedCodec{}, streams)
	if rep.DACsPerFPGA <= 4 {
		t.Fatalf("compression did not raise DAC density: %d", rep.DACsPerFPGA)
	}

	// 4. The system executes it faster than the conventional baseline with
	//    high prediction accuracy and a real fidelity number.
	sys := MustNew(WithSeed(77))
	a := sys.Run(wl, 40)
	q := sys.RunWith("QubiC", wl, 40)
	if a.MeanLatencyUs >= q.MeanLatencyUs {
		t.Fatalf("ARTERY %v µs not faster than QubiC %v µs", a.MeanLatencyUs, q.MeanLatencyUs)
	}
	if a.Accuracy < 0.8 {
		t.Fatalf("prediction accuracy %v", a.Accuracy)
	}
	if math.IsNaN(a.Fidelity) {
		t.Fatal("fidelity missing")
	}
}

// TestIntegrationCalibrationPersistsAcrossSystems checks the calibrate-
// once / reload-everywhere flow on the readout substrate.
func TestIntegrationCalibrationPersistsAcrossSystems(t *testing.T) {
	ch := readout.NewChannel(readout.DefaultCalibration(), 30, 6, stats.NewRNG(5))
	blob, err := readout.MarshalChannel(ch)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := readout.UnmarshalChannel(blob)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(6)
	for i := 0; i < 50; i++ {
		p := ch.Cal.Synthesize(i%2, rng)
		if restored.Table.PRead1(restored.Classifier.WindowBits(p, 300)) !=
			ch.Table.PRead1(ch.Classifier.WindowBits(p, 300)) {
			t.Fatal("restored channel predicts differently")
		}
	}
}

// TestIntegrationQECPipelineEndToEnd runs the QEC story end to end:
// feedback latency from the controller model feeds the memory simulation,
// and the latency advantage becomes a logical-error advantage.
func TestIntegrationQECPipelineEndToEnd(t *testing.T) {
	sys := MustNew(WithSeed(9), WithoutStateSim())
	wl := QEC(1)
	a := sys.Run(wl, 30)
	q := sys.RunWith("QubiC", wl, 30)
	if a.MeanLatencyUs >= q.MeanLatencyUs {
		t.Fatalf("QEC cycle latency: ARTERY %v vs QubiC %v", a.MeanLatencyUs, q.MeanLatencyUs)
	}
	// Latency → idle error → LER, with the exposure asymmetry.
	pA := CyclePData(2.31, 1.0)
	pQ := CyclePData(2.45, 1.9)
	lerA := LogicalErrorRate(15, 2500, pA, 0.01, 10)
	lerQ := LogicalErrorRate(15, 2500, pQ, 0.01, 11)
	if lerA >= lerQ {
		t.Fatalf("LER advantage lost: ARTERY %v vs QubiC %v", lerA, lerQ)
	}
	// And it survives the circuit-level simulation.
	clA := CircuitLevelLogicalErrorRate(3, 10, 1200, 0.003, 0.01, pA, 12)
	clQ := CircuitLevelLogicalErrorRate(3, 10, 1200, 0.003, 0.01, pQ, 13)
	if clA >= clQ {
		t.Fatalf("circuit-level LER advantage lost: %v vs %v", clA, clQ)
	}
}

// TestIntegrationTimelineMatchesEngineIdling ties the static timeline to
// the dynamic execution: the feedback span the timeline reports is the
// window the engine idles through.
func TestIntegrationTimelineMatchesEngineIdling(t *testing.T) {
	wl := QRW(1)
	tl := circuit.BuildTimeline(wl.Circuit)
	// The coin's feedback readout spans 2 µs.
	var fbSpan *circuit.Span
	for i := range tl.Spans[0] {
		if tl.Spans[0][i].Feedback {
			fbSpan = &tl.Spans[0][i]
		}
	}
	if fbSpan == nil || fbSpan.EndNs-fbSpan.StartNs != 2000 {
		t.Fatalf("feedback span wrong: %+v", fbSpan)
	}
	// The rendered timeline shows the feedback marker.
	if !strings.Contains(tl.Render(100), "~") {
		t.Fatal("timeline render missing feedback span")
	}
}
