package client

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"artery/internal/server"
)

// TestSubmitRetriesOn429HonoringRetryAfter fakes a server that rejects
// the first two submissions with 429 + Retry-After: 2 and accepts the
// third. The client must retry exactly twice, sleeping a jittered
// fraction of the server's estimate each time.
func TestSubmitRetriesOn429HonoringRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(server.ErrorBody{Error: "queue full", RetryAfterSec: 2})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(server.JobStatus{ID: "job-1", State: server.StateQueued})
	}))
	defer ts.Close()

	var slept []time.Duration
	var hooks []RetryInfo
	c := MustNew(ts.URL, WithRetries(5), WithRetryHook(func(ri RetryInfo) { hooks = append(hooks, ri) }))
	c.sleep = func(_ context.Context, d time.Duration) error { slept = append(slept, d); return nil }

	js, err := c.Submit(context.Background(), Request{Workload: "qrw", Param: 3, Shots: 5})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if js.ID != "job-1" {
		t.Errorf("job ID %q", js.ID)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
	if len(slept) != 2 || len(hooks) != 2 {
		t.Fatalf("%d sleeps, %d hooks, want 2 each", len(slept), len(hooks))
	}
	for i, d := range slept {
		// Retry-After: 2 jittered into [1s, 2s] — the server's estimate
		// must replace the (much smaller) exponential base.
		if d < time.Second || d > 2*time.Second {
			t.Errorf("sleep %d = %v, want within [1s, 2s] of Retry-After", i, d)
		}
		if hooks[i].Status != http.StatusTooManyRequests || !hooks[i].RetryAfter || hooks[i].Delay != d {
			t.Errorf("hook %d = %+v, want 429 with Retry-After and delay %v", i, hooks[i], d)
		}
	}
}

// TestSubmitRetriesOn5xxWithBackoff checks transient server errors use
// the exponential schedule: base, 2×base, jittered into [d/2, d].
func TestSubmitRetriesOn5xxWithBackoff(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(server.JobStatus{ID: "job-2"})
	}))
	defer ts.Close()

	var slept []time.Duration
	c := MustNew(ts.URL, WithBackoff(100*time.Millisecond, 5*time.Second))
	c.sleep = func(_ context.Context, d time.Duration) error { slept = append(slept, d); return nil }
	if _, err := c.Submit(context.Background(), Request{Workload: "qrw", Param: 3, Shots: 5}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if len(slept) != 2 {
		t.Fatalf("%d sleeps, want 2", len(slept))
	}
	for i, want := range []time.Duration{100 * time.Millisecond, 200 * time.Millisecond} {
		if slept[i] < want/2 || slept[i] > want {
			t.Errorf("sleep %d = %v, want within [%v, %v]", i, slept[i], want/2, want)
		}
	}
}

// TestSubmitFailsFastOn400 checks non-429 client errors are not retried.
func TestSubmitFailsFastOn400(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(server.ErrorBody{Error: "unknown workload"})
	}))
	defer ts.Close()

	c := MustNew(ts.URL)
	c.sleep = func(context.Context, time.Duration) error {
		t.Error("client slept on a non-retryable error")
		return nil
	}
	_, err := c.Submit(context.Background(), Request{Workload: "nope", Shots: 5})
	if err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("err = %v, want the server's message", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d attempts, want 1 (fail fast)", got)
	}
}

// TestSubmitExhaustsRetries checks the retry budget bounds a persistently
// full server.
func TestSubmitExhaustsRetries(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(server.ErrorBody{Error: "queue full"})
	}))
	defer ts.Close()

	c := MustNew(ts.URL, WithRetries(2))
	c.sleep = func(context.Context, time.Duration) error { return nil }
	_, err := c.Submit(context.Background(), Request{Workload: "qrw", Param: 3, Shots: 5})
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("err = %v, want the final 429", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3 (1 + 2 retries)", got)
	}
}

// TestEndToEnd drives the client against a real in-process server:
// Submit, Stream to completion, Wait, Job, Metrics.
func TestEndToEnd(t *testing.T) {
	s := server.New(server.Config{QueueDepth: 4, MaxConcurrentJobs: 1, WorkerBudget: 2})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := MustNew(ts.URL, WithTimeout(30*time.Second))

	off := false
	const shots = 25
	js, err := c.Submit(ctx, Request{
		Workload: "qrw", Param: 3, Shots: shots, Seed: 17,
		Options: &RequestOptions{StateSim: &off},
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	st, err := c.Stream(ctx, js.ID)
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	defer st.Close()
	var events []ShotEvent
	for {
		ev, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		events = append(events, ev)
	}
	end := st.End()
	if end == nil || end.State != server.StateDone || end.Result == nil {
		t.Fatalf("stream end %+v", end)
	}
	if len(events) != shots || end.Result.Shots != shots {
		t.Fatalf("streamed %d events, result %d shots, want %d", len(events), end.Result.Shots, shots)
	}
	for i, ev := range events {
		if ev.Shot != i {
			t.Fatalf("event %d carries shot %d: out of order", i, ev.Shot)
		}
	}

	final, err := c.Wait(ctx, js.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != server.StateDone || final.ShotsStreamed != shots {
		t.Fatalf("final status %+v", final)
	}

	got, err := c.Job(ctx, js.ID)
	if err != nil || got.ID != js.ID {
		t.Fatalf("Job: %+v, %v", got, err)
	}
	if _, err := c.Job(ctx, "job-999"); err == nil {
		t.Error("Job on an unknown id succeeded")
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if !strings.Contains(metrics, "artery_server_jobs_completed_total 1") {
		t.Errorf("metrics missing completed counter:\n%s", metrics)
	}
}
