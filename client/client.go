// Package client is the Go client for arteryd's job API: submission with
// retry-and-jittered-backoff on 429/5xx (honoring Retry-After), status
// polling, and a streaming iterator over per-shot NDJSON updates. Wire
// types are shared with the server (artery/internal/server), so the two
// cannot drift.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"artery/internal/server"
)

// Wire types re-exported for callers.
type (
	// Request is a job submission (see server.Request).
	Request = server.Request
	// RequestOptions carries the optional calibration settings.
	RequestOptions = server.RequestOptions
	// JobStatus is a job's status document.
	JobStatus = server.JobStatus
	// Result is a finished job's result.
	Result = server.Result
	// ShotEvent is one per-shot streaming update.
	ShotEvent = server.ShotEvent
)

// RetryInfo describes one retried attempt, for observability hooks.
type RetryInfo struct {
	// Status is the HTTP status that triggered the retry (429 or 5xx),
	// or 0 for a transport error.
	Status int
	// RetryAfter is true when the response carried a Retry-After header.
	RetryAfter bool
	// Delay is the backoff the client will sleep before the next attempt.
	Delay time.Duration
}

// Client talks to one arteryd base URL.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
	maxWait time.Duration
	onRetry func(RetryInfo)
	rng     *rand.Rand
	sleep   func(time.Duration) // test seam
}

// Option configures New.
type Option func(*Client)

// WithHTTPClient substitutes the underlying HTTP client (timeouts,
// transports).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithTimeout sets the per-request timeout of the default HTTP client
// (ignored after WithHTTPClient). Streams override it — they live as long
// as the job.
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.hc.Timeout = d } }

// WithRetries bounds the retry attempts for Submit (default 5).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the base and cap of the jittered exponential backoff
// (defaults 100ms, 5s).
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) { c.backoff, c.maxWait = base, max }
}

// WithRetryHook installs an observer invoked before every retry sleep.
func WithRetryHook(fn func(RetryInfo)) Option { return func(c *Client) { c.onRetry = fn } }

// New builds a client for the given base URL (e.g. "http://127.0.0.1:7717").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(base, "/"),
		hc:      &http.Client{Timeout: 30 * time.Second},
		retries: 5,
		backoff: 100 * time.Millisecond,
		maxWait: 5 * time.Second,
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
		sleep:   time.Sleep,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Submit posts a job. Over-capacity (429) and transient server errors
// (5xx) are retried with jittered exponential backoff — a 429's
// Retry-After header, when present, replaces the exponential delay — up
// to the configured retry budget. 4xx errors other than 429 fail fast.
func (c *Client) Submit(ctx context.Context, req Request) (*JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var last error
	for attempt := 0; ; attempt++ {
		st, retryable, err := c.trySubmit(ctx, body)
		if err == nil {
			return st, nil
		}
		last = err
		if !retryable || attempt >= c.retries {
			return nil, last
		}
		info := c.delay(attempt, err)
		if c.onRetry != nil {
			c.onRetry(info)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
		c.sleep(info.Delay)
	}
}

// httpError is a non-2xx response.
type httpError struct {
	status     int
	msg        string
	retryAfter time.Duration
	hasRetry   bool
}

func (e *httpError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.status, e.msg)
}

// trySubmit performs one POST attempt; retryable marks 429/5xx/transport
// failures.
func (c *Client) trySubmit(ctx context.Context, body []byte) (st *JobStatus, retryable bool, err error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return nil, false, ctx.Err()
		}
		return nil, true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted {
		var js JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
			return nil, false, err
		}
		return &js, false, nil
	}
	he := &httpError{status: resp.StatusCode, msg: readError(resp.Body)}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, perr := strconv.Atoi(ra); perr == nil {
			he.retryAfter = time.Duration(secs) * time.Second
			he.hasRetry = true
		}
	}
	retryable = resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500
	return nil, retryable, he
}

// delay computes the next sleep: the server's Retry-After estimate when
// a 429 carried one, else exponential backoff from the base — either
// way jittered into [d/2, d] to decorrelate a fleet of clients hammering
// a full queue.
func (c *Client) delay(attempt int, err error) RetryInfo {
	var info RetryInfo
	d := c.backoff << uint(attempt)
	if he, ok := err.(*httpError); ok {
		info.Status = he.status
		info.RetryAfter = he.hasRetry
		if he.hasRetry && he.retryAfter > 0 {
			d = he.retryAfter
		}
	}
	if d > c.maxWait {
		d = c.maxWait
	}
	info.Delay = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	return info
}

// Job fetches a job's status.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &httpError{status: resp.StatusCode, msg: readError(resp.Body)}
	}
	var js JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		return nil, err
	}
	return &js, nil
}

// Wait polls a job until it reaches a terminal state (done, failed or
// canceled), the context expires, or the server disappears.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		js, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		switch js.State {
		case server.StateDone, server.StateFailed, server.StateCanceled:
			return js, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}

// Metrics fetches the /metrics Prometheus exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", &httpError{status: resp.StatusCode, msg: readError(resp.Body)}
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// readError extracts the error message of a non-2xx body.
func readError(r io.Reader) string {
	var eb server.ErrorBody
	if err := json.NewDecoder(io.LimitReader(r, 1<<16)).Decode(&eb); err == nil && eb.Error != "" {
		return eb.Error
	}
	return "(no error body)"
}
