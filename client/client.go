// Package client is the Go client for arteryd's job API: submission with
// retry-and-jittered-backoff on 429/5xx (honoring Retry-After), rotation
// across multiple endpoints, status polling, and a streaming iterator
// over per-shot NDJSON updates that transparently reconnects and resumes
// from the last event it delivered. Wire types are shared with the server
// and the coordinator (artery/api), so the three cannot drift.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"artery/api"
)

// Wire types re-exported for callers.
//
// The canonical definitions live in artery/api; these aliases keep
// client-side code importable without a second import.
type (
	// Request is a job submission (see api.Request).
	Request = api.Request
	// RequestOptions carries the optional calibration settings.
	RequestOptions = api.RequestOptions
	// JobStatus is a job's status document.
	JobStatus = api.JobStatus
	// Result is a finished job's result.
	Result = api.Result
	// ShotEvent is one per-shot streaming update.
	ShotEvent = api.ShotEvent
)

// RetryInfo describes one retried attempt, for observability hooks.
type RetryInfo struct {
	// Status is the HTTP status that triggered the retry (429 or 5xx),
	// or 0 for a transport error.
	Status int
	// RetryAfter is true when the response carried a Retry-After header.
	RetryAfter bool
	// Delay is the backoff the client will sleep before the next attempt.
	Delay time.Duration
	// Endpoint is the base URL the failed attempt targeted.
	Endpoint string
}

// Client talks to one or more arteryd base URLs. With several endpoints
// (NewMulti), submissions rotate to the next endpoint on retryable
// failures, and requests about a job are routed to the endpoint that
// accepted it. A Client is safe for concurrent use.
type Client struct {
	bases   []string
	hc      *http.Client
	retries int
	backoff time.Duration
	maxWait time.Duration
	waitCap time.Duration // cap on an honored Retry-After (0 = maxWait)
	onRetry func(RetryInfo)
	sleep   func(ctx context.Context, d time.Duration) error // test seam

	mu     sync.Mutex
	rng    *rand.Rand
	cur    int               // preferred endpoint index
	routes map[string]string // job ID -> accepting endpoint
	order  []string          // route insertion order, for capped eviction
}

// maxRoutes caps the job-routing table. Routes are pruned as soon as a
// job is observed terminal (Wait, Stream end); the cap bounds
// fire-and-forget callers that never look at a job again.
const maxRoutes = 4096

// sleepCtx sleeps for d unless ctx ends first, returning ctx's error so
// backoffs never outlive a canceled caller.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Option configures New.
type Option func(*Client)

// WithHTTPClient substitutes the underlying HTTP client (timeouts,
// transports).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithTimeout sets the per-request timeout of the default HTTP client
// (ignored after WithHTTPClient). Streams override it — they live as long
// as the job.
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.hc.Timeout = d } }

// WithRetries bounds the retry attempts for Submit and the reconnect
// attempts of a Stream (default 5).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the base and cap of the jittered exponential backoff
// (defaults 100ms, 5s).
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) { c.backoff, c.maxWait = base, max }
}

// WithRetryHook installs an observer invoked before every retry sleep.
func WithRetryHook(fn func(RetryInfo)) Option { return func(c *Client) { c.onRetry = fn } }

// WithRetryAfterCap bounds how long a server-sent Retry-After header can
// make Submit sleep (default: the WithBackoff cap). An overloaded — or
// chaos-degraded — server quoting a huge estimate must not pin a client
// for minutes when rotating to another endpoint is available.
func WithRetryAfterCap(d time.Duration) Option { return func(c *Client) { c.waitCap = d } }

// New builds a client for the given base URL (e.g.
// "http://127.0.0.1:7717"). The URL is validated here — an unparseable
// or schemeless base fails at construction, not on the first request.
func New(base string, opts ...Option) (*Client, error) {
	return NewMulti([]string{base}, opts...)
}

// NewMulti builds a client over several equivalent endpoints (replicas
// or coordinators). Submissions prefer the current endpoint and rotate
// to the next on retryable failures (transport errors, 429, 5xx);
// status, stream and wait calls for a job are routed to the endpoint
// that accepted it (job IDs are server-local).
func NewMulti(bases []string, opts ...Option) (*Client, error) {
	if len(bases) == 0 {
		return nil, fmt.Errorf("client: at least one endpoint is required")
	}
	c := &Client{
		bases:   make([]string, len(bases)),
		hc:      &http.Client{Timeout: 30 * time.Second},
		retries: 5,
		backoff: 100 * time.Millisecond,
		maxWait: 5 * time.Second,
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
		sleep:   sleepCtx,
		routes:  map[string]string{},
	}
	for i, b := range bases {
		nb, err := normalizeBase(b)
		if err != nil {
			return nil, err
		}
		c.bases[i] = nb
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// MustNew is New for call sites that prefer a panic over an error (tests,
// package-level variables, CLIs that validated the flag already).
func MustNew(base string, opts ...Option) *Client {
	c, err := New(base, opts...)
	if err != nil {
		panic(err)
	}
	return c
}

// normalizeBase validates a base URL and strips its trailing slash.
func normalizeBase(base string) (string, error) {
	b := strings.TrimRight(base, "/")
	u, err := url.Parse(b)
	if err != nil {
		return "", fmt.Errorf("client: invalid base URL %q: %v", base, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("client: base URL %q must use http or https, got scheme %q", base, u.Scheme)
	}
	if u.Host == "" {
		return "", fmt.Errorf("client: base URL %q has no host", base)
	}
	if u.RawQuery != "" || u.Fragment != "" {
		return "", fmt.Errorf("client: base URL %q must not carry a query or fragment", base)
	}
	return b, nil
}

// Endpoints returns the configured base URLs.
func (c *Client) Endpoints() []string { return append([]string(nil), c.bases...) }

// endpoint returns the currently preferred base URL.
func (c *Client) endpoint() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bases[c.cur]
}

// rotate advances the preferred endpoint past a failing base (no-op for
// single-endpoint clients, or when another caller already rotated).
func (c *Client) rotate(failed string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.bases) > 1 && c.bases[c.cur] == failed {
		c.cur = (c.cur + 1) % len(c.bases)
	}
}

// remember records which endpoint accepted a job. The table is bounded:
// terminal jobs are forgotten eagerly, and past maxRoutes the oldest
// remembered routes are evicted (a job ID is only useful while its job
// is live, so a coordinator submitting shard-jobs forever stays flat).
func (c *Client) remember(id, base string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.routes[id]; !ok {
		c.order = append(c.order, id)
	}
	c.routes[id] = base
	for len(c.routes) > maxRoutes && len(c.order) > 0 {
		delete(c.routes, c.order[0])
		c.order = c.order[1:]
	}
	// Compact the order slice once forgotten IDs dominate it, so eager
	// pruning doesn't just move the leak from the map to the slice.
	if len(c.order) > 2*len(c.routes)+16 {
		live := c.order[:0]
		for _, oid := range c.order {
			if _, ok := c.routes[oid]; ok {
				live = append(live, oid)
			}
		}
		c.order = live
	}
}

// forget drops a job's route once the job is observed in a terminal
// state — nothing routes to it anymore.
func (c *Client) forget(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.routes, id)
}

// route returns the endpoint serving a job's ID: the accepting endpoint
// when known, else the preferred one.
func (c *Client) route(id string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.routes[id]; ok {
		return b
	}
	return c.bases[c.cur]
}

// Submit posts a job. Over-capacity (429) and transient server errors
// (5xx) are retried with jittered exponential backoff — a 429's
// Retry-After header, when present, replaces the exponential delay — up
// to the configured retry budget, rotating to the next endpoint between
// attempts when several are configured. 4xx errors other than 429 fail
// fast.
func (c *Client) Submit(ctx context.Context, req Request) (*JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var last error
	for attempt := 0; ; attempt++ {
		base := c.endpoint()
		st, retryable, err := c.trySubmit(ctx, base, body)
		if err == nil {
			c.remember(st.ID, base)
			return st, nil
		}
		last = err
		if !retryable || attempt >= c.retries {
			return nil, last
		}
		c.rotate(base)
		info := c.delay(attempt, err)
		info.Endpoint = base
		if c.onRetry != nil {
			c.onRetry(info)
		}
		if err := c.sleep(ctx, info.Delay); err != nil {
			return nil, err
		}
	}
}

// httpError is a non-2xx response.
type httpError struct {
	status     int
	msg        string
	code       string // typed api.ErrorBody code ("evicted", ...)
	retryAfter time.Duration
	hasRetry   bool
}

func (e *httpError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.status, e.msg)
}

// IsGone reports whether err is the server's typed 410 answer for a job
// id that existed but has been evicted (and, without a durable store, is
// gone for good). Distinguishable from a 404 for an id that never
// existed: retrying a Gone id is pointless, resubmitting the request —
// same seed, byte-identical result — is the remedy.
func IsGone(err error) bool {
	he, ok := err.(*httpError)
	return ok && he.status == http.StatusGone && he.code == api.CodeEvicted
}

// trySubmit performs one POST attempt against base; retryable marks
// 429/5xx/transport failures.
func (c *Client) trySubmit(ctx context.Context, base string, body []byte) (st *JobStatus, retryable bool, err error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return nil, false, ctx.Err()
		}
		return nil, true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted {
		var js JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
			// The job was accepted but its status document did not survive
			// the wire (a truncated or corrupted response). Retry: with
			// deterministic jobs a blind resubmission is harmless — the
			// duplicate run produces byte-identical results.
			return nil, true, fmt.Errorf("client: decoding 202 response: %w", err)
		}
		if js.ID == "" {
			return nil, true, fmt.Errorf("client: 202 response carries no job id")
		}
		return &js, false, nil
	}
	he := httpErrorFrom(resp.StatusCode, resp.Body)
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, perr := strconv.Atoi(ra); perr == nil {
			he.retryAfter = time.Duration(secs) * time.Second
			he.hasRetry = true
		}
	}
	retryable = resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500
	return nil, retryable, he
}

// delay computes the next sleep: the server's Retry-After estimate when
// a 429 carried one (capped by WithRetryAfterCap), else exponential
// backoff from the base (capped by WithBackoff's max) — either way
// jittered into [d/2, d] to decorrelate a fleet of clients hammering a
// full queue.
func (c *Client) delay(attempt int, err error) RetryInfo {
	var info RetryInfo
	d := c.backoff << uint(attempt)
	cap := c.maxWait
	if he, ok := err.(*httpError); ok {
		info.Status = he.status
		info.RetryAfter = he.hasRetry
		if he.hasRetry && he.retryAfter > 0 {
			d = he.retryAfter
			if c.waitCap > 0 {
				cap = c.waitCap
			}
		}
	}
	if d > cap {
		d = cap
	}
	c.mu.Lock()
	jitter := time.Duration(c.rng.Int63n(int64(d/2) + 1))
	c.mu.Unlock()
	info.Delay = d/2 + jitter
	return info
}

// Job fetches a job's status.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.route(id)+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpErrorFrom(resp.StatusCode, resp.Body)
	}
	var js JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		return nil, err
	}
	return &js, nil
}

// Wait polls a job until it reaches a terminal state (done, failed or
// canceled), the context expires, or the server disappears.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		js, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if api.Terminal(js.State) {
			c.forget(id)
			return js, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}

// Metrics fetches the /metrics Prometheus exposition of the preferred
// endpoint.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.endpoint()+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", httpErrorFrom(resp.StatusCode, resp.Body)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// httpErrorFrom builds the typed error for a non-2xx response, parsing
// the api.ErrorBody message and machine-readable code.
func httpErrorFrom(status int, r io.Reader) *httpError {
	he := &httpError{status: status, msg: "(no error body)"}
	var eb api.ErrorBody
	if err := json.NewDecoder(io.LimitReader(r, 1<<16)).Decode(&eb); err == nil && eb.Error != "" {
		he.msg, he.code = eb.Error, eb.Code
	}
	return he
}
