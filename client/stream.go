package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"unicode/utf8"

	"artery/api"
)

// Stream iterates a job's NDJSON per-shot updates. Events arrive in shot
// order (the server emits them from the engine's in-order merge path);
// after Next returns io.EOF, End holds the job's terminal state and
// result.
//
// A dropped connection is transparent: Next reopens the stream with
// ?from=<delivered>, resuming at the first event the caller has not yet
// seen (the server's event log is deterministic and append-only, so the
// resumed stream continues exactly where the old one broke). Reconnects
// share the client's retry budget and backoff schedule; the budget
// resets every time an event is delivered.
type Stream struct {
	c   *Client
	ctx context.Context
	id  string

	body io.ReadCloser
	sc   *bufio.Scanner
	end  *api.StreamEnd

	delivered  int // events handed to the caller == next ?from=
	reconnects int // attempts used on the current gap
}

// streamLine is the union of the two NDJSON line shapes: a ShotEvent, or
// the terminal StreamEnd line ("done":true).
type streamLine struct {
	ShotEvent
	Done   bool        `json:"done"`
	State  string      `json:"state"`
	Error  string      `json:"error"`
	Result *api.Result `json:"result"`
}

// Stream opens the per-shot event stream of a job from its first event.
// The request uses a dedicated no-timeout client derived from the
// configured transport — streams live as long as the job — so bound it
// with ctx.
func (c *Client) Stream(ctx context.Context, id string) (*Stream, error) {
	return c.StreamFrom(ctx, id, 0)
}

// StreamFrom opens a job's event stream skipping the first from events —
// the resume primitive: a caller that already consumed n events continues
// with StreamFrom(ctx, id, n).
func (c *Client) StreamFrom(ctx context.Context, id string, from int) (*Stream, error) {
	if from < 0 {
		return nil, fmt.Errorf("stream: from must be non-negative, got %d", from)
	}
	s := &Stream{c: c, ctx: ctx, id: id, delivered: from}
	if err := s.open(); err != nil {
		return nil, err
	}
	return s, nil
}

// open (re)establishes the HTTP stream from s.delivered.
func (s *Stream) open() error {
	u := s.c.route(s.id) + "/v1/jobs/" + s.id + "/stream"
	if s.delivered > 0 {
		u += "?from=" + strconv.Itoa(s.delivered)
	}
	hreq, err := http.NewRequestWithContext(s.ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	hc := &http.Client{Transport: s.c.hc.Transport}
	resp, err := hc.Do(hreq)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return httpErrorFrom(resp.StatusCode, resp.Body)
	}
	if s.body != nil {
		s.body.Close()
	}
	s.body = resp.Body
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	s.sc = sc
	return nil
}

// Next returns the next per-shot event. It returns io.EOF once the
// terminal line arrives (see End). Transport failures mid-stream trigger
// transparent reconnects (resuming from the last delivered event) until
// the client's retry budget is exhausted.
func (s *Stream) Next() (ShotEvent, error) {
	for {
		ev, err := s.next()
		if err == nil {
			s.delivered++
			s.reconnects = 0
			return ev, nil
		}
		if err == io.EOF {
			return ShotEvent{}, io.EOF
		}
		if rerr := s.recover(err); rerr != nil {
			return ShotEvent{}, rerr
		}
	}
}

// next reads one line off the current connection.
func (s *Stream) next() (ShotEvent, error) {
	for s.sc.Scan() {
		line := s.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		// The wire format is pure ASCII JSON, so any invalid UTF-8 is
		// corruption in flight. Checking before decoding matters: a
		// corrupt byte inside a KEY would decode as U+FFFD, turn the key
		// unknown, and silently zero the field — json.Unmarshal alone
		// cannot see that. Failing here routes through the reconnect
		// path, which re-fetches the line clean via ?from=.
		if !utf8.Valid(line) {
			return ShotEvent{}, fmt.Errorf("stream: line %d is not valid UTF-8 (corrupted in flight)", s.delivered)
		}
		var l streamLine
		if err := json.Unmarshal(line, &l); err != nil {
			return ShotEvent{}, fmt.Errorf("stream: bad line: %w", err)
		}
		if l.Done {
			s.end = &api.StreamEnd{Done: true, State: l.State, Error: l.Error, Result: l.Result}
			s.c.forget(s.id) // the job is terminal; its route is dead weight
			return ShotEvent{}, io.EOF
		}
		return l.ShotEvent, nil
	}
	if err := s.sc.Err(); err != nil {
		return ShotEvent{}, fmt.Errorf("stream: %w", err)
	}
	return ShotEvent{}, fmt.Errorf("stream: connection closed before the job finished")
}

// recover attempts one reconnect after cause, honoring the context and
// the retry budget. A permanent failure (budget exhausted, 4xx on
// reopen, canceled context) returns the error Next should surface.
func (s *Stream) recover(cause error) error {
	for {
		if s.ctx.Err() != nil {
			return s.ctx.Err()
		}
		if s.reconnects >= s.c.retries {
			return fmt.Errorf("stream: giving up after %d reconnect attempts: %w", s.reconnects, cause)
		}
		info := s.c.delay(s.reconnects, cause)
		s.reconnects++
		if s.c.onRetry != nil {
			s.c.onRetry(info)
		}
		if err := s.c.sleep(s.ctx, info.Delay); err != nil {
			return err
		}
		err := s.open()
		if err == nil {
			return nil
		}
		// The job vanished (evicted, or the server restarted empty):
		// reconnecting can't help.
		if he, ok := err.(*httpError); ok && he.status >= 400 && he.status < 500 {
			return fmt.Errorf("stream: reconnect failed permanently: %w", err)
		}
		cause = err
	}
}

// End returns the terminal line (state, error, result) once Next has
// returned io.EOF; nil before that.
func (s *Stream) End() *api.StreamEnd { return s.end }

// Close releases the underlying connection.
func (s *Stream) Close() error {
	if s.body == nil {
		return nil
	}
	return s.body.Close()
}
