package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"artery/internal/server"
)

// Stream iterates a job's NDJSON per-shot updates. Events arrive in shot
// order (the server emits them from the engine's in-order merge path);
// after Next returns io.EOF, End holds the job's terminal state and
// result.
type Stream struct {
	body io.ReadCloser
	sc   *bufio.Scanner
	end  *server.StreamEnd
}

// streamLine is the union of the two NDJSON line shapes: a ShotEvent, or
// the terminal StreamEnd line ("done":true).
type streamLine struct {
	ShotEvent
	Done   bool           `json:"done"`
	State  string         `json:"state"`
	Error  string         `json:"error"`
	Result *server.Result `json:"result"`
}

// Stream opens the per-shot event stream of a job. The request uses a
// dedicated no-timeout client derived from the configured transport —
// streams live as long as the job — so bound it with ctx.
func (c *Client) Stream(ctx context.Context, id string) (*Stream, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return nil, err
	}
	hc := &http.Client{Transport: c.hc.Transport}
	resp, err := hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, &httpError{status: resp.StatusCode, msg: readError(resp.Body)}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &Stream{body: resp.Body, sc: sc}, nil
}

// Next returns the next per-shot event. It returns io.EOF once the
// terminal line arrives (see End) and a descriptive error if the stream
// ends without one (server died mid-job).
func (s *Stream) Next() (ShotEvent, error) {
	for s.sc.Scan() {
		line := s.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var l streamLine
		if err := json.Unmarshal(line, &l); err != nil {
			return ShotEvent{}, fmt.Errorf("stream: bad line: %w", err)
		}
		if l.Done {
			s.end = &server.StreamEnd{Done: true, State: l.State, Error: l.Error, Result: l.Result}
			return ShotEvent{}, io.EOF
		}
		return l.ShotEvent, nil
	}
	if err := s.sc.Err(); err != nil {
		return ShotEvent{}, err
	}
	return ShotEvent{}, fmt.Errorf("stream: connection closed before the job finished")
}

// End returns the terminal line (state, error, result) once Next has
// returned io.EOF; nil before that.
func (s *Stream) End() *server.StreamEnd { return s.end }

// Close releases the underlying connection.
func (s *Stream) Close() error { return s.body.Close() }
