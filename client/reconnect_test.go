package client

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"artery/internal/server"
)

// TestNewValidatesBaseURL: the redesigned constructor fails fast on
// malformed bases instead of erroring on the first request.
func TestNewValidatesBaseURL(t *testing.T) {
	for _, bad := range []string{"", "127.0.0.1:7717", "ftp://host", "http://", "http://host/?x=1", "://nope"} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) accepted an invalid base", bad)
		}
	}
	c, err := New("http://127.0.0.1:7717/")
	if err != nil {
		t.Fatalf("New rejected a valid base: %v", err)
	}
	if got := c.Endpoints()[0]; got != "http://127.0.0.1:7717" {
		t.Errorf("trailing slash survived normalization: %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on an invalid base")
		}
	}()
	MustNew(":not a url:")
}

// TestNewMultiRotatesOnFailure: with two endpoints, a dead first node
// costs one retry and the submission lands on the second; follow-up
// requests about the job route to the endpoint that accepted it.
func TestNewMultiRotatesOnFailure(t *testing.T) {
	var deadCalls atomic.Int32
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		deadCalls.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer dead.Close()
	var aliveJobs atomic.Int32
	alive := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost:
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(JobStatus{ID: "job-1", State: "queued"})
		default:
			aliveJobs.Add(1)
			json.NewEncoder(w).Encode(JobStatus{ID: "job-1", State: "done"})
		}
	}))
	defer alive.Close()

	c, err := NewMulti([]string{dead.URL, alive.URL}, WithRetries(3))
	if err != nil {
		t.Fatalf("NewMulti: %v", err)
	}
	c.sleep = func(time.Duration) {}
	js, err := c.Submit(context.Background(), Request{Workload: "qrw", Param: 3, Shots: 5})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if got := deadCalls.Load(); got != 1 {
		t.Errorf("dead endpoint saw %d attempts, want 1 (rotate after first failure)", got)
	}
	// Job status must hit the accepting endpoint, not the dead one.
	if _, err := c.Job(context.Background(), js.ID); err != nil {
		t.Fatalf("Job: %v", err)
	}
	if aliveJobs.Load() != 1 {
		t.Errorf("status call did not route to the accepting endpoint")
	}
}

// chokeStream wraps a real server handler and truncates every stream
// response after limit NDJSON lines, closing the connection — the client
// must reconnect with ?from= and keep going.
func chokeStream(h http.Handler, limit int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasSuffix(r.URL.Path, "/stream") {
			h.ServeHTTP(w, r)
			return
		}
		h.ServeHTTP(&truncWriter{ResponseWriter: w, left: limit}, r)
	})
}

// truncWriter counts newline-terminated writes and fails after the
// limit, making the server handler abandon the response mid-stream.
type truncWriter struct {
	http.ResponseWriter
	left int
}

func (t *truncWriter) Write(p []byte) (int, error) {
	if t.left <= 0 {
		return 0, io.ErrClosedPipe
	}
	t.left--
	return t.ResponseWriter.Write(p)
}

// TestStreamReconnectResumes: every stream connection dies after two
// events, yet the client's transparent ?from= reconnects deliver the
// complete in-order event sequence exactly once.
func TestStreamReconnectResumes(t *testing.T) {
	s := server.New(server.Config{QueueDepth: 4, MaxConcurrentJobs: 1, WorkerBudget: 2})
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	ts := httptest.NewServer(chokeStream(s.Handler(), 2))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := MustNew(ts.URL, WithRetries(4), WithBackoff(time.Millisecond, 10*time.Millisecond))

	off := false
	const shots = 11
	js, err := c.Submit(ctx, Request{
		Workload: "qrw", Param: 3, Shots: shots, Seed: 3,
		Options: &RequestOptions{StateSim: &off},
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, err := c.Stream(ctx, js.ID)
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	defer st.Close()
	reconnects := 0
	c.onRetry = func(RetryInfo) { reconnects++ }
	got := 0
	for {
		ev, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next after %d events: %v", got, err)
		}
		if ev.Shot != got {
			t.Fatalf("event %d carries shot %d: resume skipped or duplicated", got, ev.Shot)
		}
		got++
	}
	if got != shots {
		t.Fatalf("delivered %d events, want %d", got, shots)
	}
	if end := st.End(); end == nil || end.State != "done" || end.Result == nil || end.Result.Shots != shots {
		t.Fatalf("stream end %+v", end)
	}
	if reconnects == 0 {
		t.Fatal("stream finished without a single reconnect: the choke wrapper is not engaging")
	}
}

// TestStreamFromSkipsPrefix: StreamFrom is the public resume primitive.
func TestStreamFromSkipsPrefix(t *testing.T) {
	s := server.New(server.Config{QueueDepth: 4, MaxConcurrentJobs: 1, WorkerBudget: 2})
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx := context.Background()
	c := MustNew(ts.URL)
	off := false
	js, err := c.Submit(ctx, Request{Workload: "qrw", Param: 3, Shots: 9, Seed: 2, Options: &RequestOptions{StateSim: &off}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := c.Wait(ctx, js.ID, 5*time.Millisecond); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	st, err := c.StreamFrom(ctx, js.ID, 6)
	if err != nil {
		t.Fatalf("StreamFrom: %v", err)
	}
	defer st.Close()
	want := 6
	for {
		ev, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if ev.Shot != want {
			t.Fatalf("event carries shot %d, want %d", ev.Shot, want)
		}
		want++
	}
	if want != 9 {
		t.Fatalf("resumed stream delivered up to shot %d, want 9", want)
	}
	if _, err := c.StreamFrom(ctx, js.ID, -1); err == nil {
		t.Error("StreamFrom(-1) succeeded")
	}
}
