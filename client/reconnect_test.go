package client

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"artery/internal/server"
)

// TestNewValidatesBaseURL: the redesigned constructor fails fast on
// malformed bases instead of erroring on the first request.
func TestNewValidatesBaseURL(t *testing.T) {
	for _, bad := range []string{"", "127.0.0.1:7717", "ftp://host", "http://", "http://host/?x=1", "://nope"} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) accepted an invalid base", bad)
		}
	}
	c, err := New("http://127.0.0.1:7717/")
	if err != nil {
		t.Fatalf("New rejected a valid base: %v", err)
	}
	if got := c.Endpoints()[0]; got != "http://127.0.0.1:7717" {
		t.Errorf("trailing slash survived normalization: %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on an invalid base")
		}
	}()
	MustNew(":not a url:")
}

// TestNewMultiRotatesOnFailure: with two endpoints, a dead first node
// costs one retry and the submission lands on the second; follow-up
// requests about the job route to the endpoint that accepted it.
func TestNewMultiRotatesOnFailure(t *testing.T) {
	var deadCalls atomic.Int32
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		deadCalls.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer dead.Close()
	var aliveJobs atomic.Int32
	alive := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost:
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(JobStatus{ID: "job-1", State: "queued"})
		default:
			aliveJobs.Add(1)
			json.NewEncoder(w).Encode(JobStatus{ID: "job-1", State: "done"})
		}
	}))
	defer alive.Close()

	c, err := NewMulti([]string{dead.URL, alive.URL}, WithRetries(3))
	if err != nil {
		t.Fatalf("NewMulti: %v", err)
	}
	c.sleep = func(context.Context, time.Duration) error { return nil }
	js, err := c.Submit(context.Background(), Request{Workload: "qrw", Param: 3, Shots: 5})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if got := deadCalls.Load(); got != 1 {
		t.Errorf("dead endpoint saw %d attempts, want 1 (rotate after first failure)", got)
	}
	// Job status must hit the accepting endpoint, not the dead one.
	if _, err := c.Job(context.Background(), js.ID); err != nil {
		t.Fatalf("Job: %v", err)
	}
	if aliveJobs.Load() != 1 {
		t.Errorf("status call did not route to the accepting endpoint")
	}
}

// chokeStream wraps a real server handler and truncates every stream
// response after limit NDJSON lines, closing the connection — the client
// must reconnect with ?from= and keep going.
func chokeStream(h http.Handler, limit int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasSuffix(r.URL.Path, "/stream") {
			h.ServeHTTP(w, r)
			return
		}
		h.ServeHTTP(&truncWriter{ResponseWriter: w, left: limit}, r)
	})
}

// truncWriter counts newline-terminated writes and fails after the
// limit, making the server handler abandon the response mid-stream.
type truncWriter struct {
	http.ResponseWriter
	left int
}

func (t *truncWriter) Write(p []byte) (int, error) {
	if t.left <= 0 {
		return 0, io.ErrClosedPipe
	}
	t.left--
	return t.ResponseWriter.Write(p)
}

// TestStreamReconnectResumes: every stream connection dies after two
// events, yet the client's transparent ?from= reconnects deliver the
// complete in-order event sequence exactly once.
func TestStreamReconnectResumes(t *testing.T) {
	s := server.New(server.Config{QueueDepth: 4, MaxConcurrentJobs: 1, WorkerBudget: 2})
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	ts := httptest.NewServer(chokeStream(s.Handler(), 2))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := MustNew(ts.URL, WithRetries(4), WithBackoff(time.Millisecond, 10*time.Millisecond))

	off := false
	const shots = 11
	js, err := c.Submit(ctx, Request{
		Workload: "qrw", Param: 3, Shots: shots, Seed: 3,
		Options: &RequestOptions{StateSim: &off},
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, err := c.Stream(ctx, js.ID)
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	defer st.Close()
	reconnects := 0
	c.onRetry = func(RetryInfo) { reconnects++ }
	got := 0
	for {
		ev, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next after %d events: %v", got, err)
		}
		if ev.Shot != got {
			t.Fatalf("event %d carries shot %d: resume skipped or duplicated", got, ev.Shot)
		}
		got++
	}
	if got != shots {
		t.Fatalf("delivered %d events, want %d", got, shots)
	}
	if end := st.End(); end == nil || end.State != "done" || end.Result == nil || end.Result.Shots != shots {
		t.Fatalf("stream end %+v", end)
	}
	if reconnects == 0 {
		t.Fatal("stream finished without a single reconnect: the choke wrapper is not engaging")
	}
}

// TestStreamFromSkipsPrefix: StreamFrom is the public resume primitive.
func TestStreamFromSkipsPrefix(t *testing.T) {
	s := server.New(server.Config{QueueDepth: 4, MaxConcurrentJobs: 1, WorkerBudget: 2})
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx := context.Background()
	c := MustNew(ts.URL)
	off := false
	js, err := c.Submit(ctx, Request{Workload: "qrw", Param: 3, Shots: 9, Seed: 2, Options: &RequestOptions{StateSim: &off}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := c.Wait(ctx, js.ID, 5*time.Millisecond); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	st, err := c.StreamFrom(ctx, js.ID, 6)
	if err != nil {
		t.Fatalf("StreamFrom: %v", err)
	}
	defer st.Close()
	want := 6
	for {
		ev, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if ev.Shot != want {
			t.Fatalf("event carries shot %d, want %d", ev.Shot, want)
		}
		want++
	}
	if want != 9 {
		t.Fatalf("resumed stream delivered up to shot %d, want 9", want)
	}
	if _, err := c.StreamFrom(ctx, js.ID, -1); err == nil {
		t.Error("StreamFrom(-1) succeeded")
	}
}

// routeCount reads the size of the job-routing table.
func routeCount(c *Client) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.routes)
}

// TestRoutesPrunedOnTerminal: observing a job terminal (Wait, or a
// stream's end line) drops its route — a long-lived client submitting
// forever must not accumulate one entry per job.
func TestRoutesPrunedOnTerminal(t *testing.T) {
	s := server.New(server.Config{QueueDepth: 4, MaxConcurrentJobs: 1, WorkerBudget: 2})
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx := context.Background()
	c := MustNew(ts.URL)
	off := false
	req := Request{Workload: "qrw", Param: 3, Shots: 3, Seed: 5, Options: &RequestOptions{StateSim: &off}}

	js, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if routeCount(c) != 1 {
		t.Fatalf("after Submit: %d routes, want 1", routeCount(c))
	}
	if _, err := c.Wait(ctx, js.ID, time.Millisecond); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if routeCount(c) != 0 {
		t.Fatalf("after terminal Wait: %d routes, want 0", routeCount(c))
	}

	js, err = c.Submit(ctx, req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, err := c.Stream(ctx, js.ID)
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	defer st.Close()
	for {
		if _, err := st.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("Next: %v", err)
		}
	}
	if routeCount(c) != 0 {
		t.Fatalf("after stream end: %d routes, want 0", routeCount(c))
	}
}

// TestRouteTableBounded: even a fire-and-forget submitter that never
// observes its jobs terminal keeps the table at the cap, and eager
// pruning does not just move the growth into the order slice.
func TestRouteTableBounded(t *testing.T) {
	c := MustNew("http://127.0.0.1:1")
	for i := 0; i < 3*maxRoutes; i++ {
		id := "job-" + strconv.Itoa(i)
		c.remember(id, c.bases[0])
		if i%2 == 0 {
			c.forget(id)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.routes) > maxRoutes {
		t.Errorf("routes grew to %d, cap is %d", len(c.routes), maxRoutes)
	}
	if len(c.order) > 2*maxRoutes+16 {
		t.Errorf("order slice grew to %d entries for %d routes", len(c.order), len(c.routes))
	}
}

// TestStreamRecoverHonorsCancel: canceling the stream's context must
// interrupt a reconnect backoff immediately, not after the full delay.
func TestStreamRecoverHonorsCancel(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// One event, then the connection dies without a done line — every
		// Next past the first enters the reconnect path.
		w.Write([]byte(`{"shot":0}` + "\n"))
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := MustNew(ts.URL, WithBackoff(30*time.Second, 30*time.Second))
	st, err := c.StreamFrom(ctx, "job-1", 0)
	if err != nil {
		t.Fatalf("StreamFrom: %v", err)
	}
	defer st.Close()
	if ev, err := st.Next(); err != nil || ev.Shot != 0 {
		t.Fatalf("first Next: %+v, %v", ev, err)
	}

	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = st.Next()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Next blocked %v through the backoff after cancel", elapsed)
	}
	if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("Next after cancel: %v, want a canceled error", err)
	}
}
