package client

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"artery/api"
	"artery/internal/chaos"
	"artery/internal/server"
)

// TestStreamResumesThroughChaosProxy is the satellite-4 acceptance test:
// a client streaming a job through the chaos TCP proxy — which truncates
// NDJSON responses mid-line, resets connections, and corrupts bytes on a
// deterministic schedule — must deliver every event exactly once, in
// order, byte-identical to a clean direct stream, by reconnecting with
// ?from=<delivered>.
func TestStreamResumesThroughChaosProxy(t *testing.T) {
	off := false
	req := api.Request{
		Workload: "qrw", Param: 3, Controller: "ARTERY", Shots: 30, Seed: 21,
		StreamStages: true, Options: &api.RequestOptions{StateSim: &off},
	}
	s := server.New(server.Config{QueueDepth: 8, MaxConcurrentJobs: 2, WorkerBudget: 2})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	// The clean reference run, straight at the server.
	wantEvents, wantResult := streamAll(t, MustNew(ts.URL), req)

	// Truncation-heavy chaos schedule: NDJSON cut mid-line early and
	// often, with resets and corrupt bytes mixed in. High rates are the
	// point — the stream should survive a proxy this hostile as long as
	// reconnects eventually land a working connection.
	p, err := chaos.NewProxy(chaos.Config{
		Seed:         5,
		TruncateRate: 0.4,
		TruncateMin:  80,
		TruncateMax:  600,
		ResetRate:    0.1,
		CorruptRate:  0.1,
		CorruptSpan:  512,
	}, "127.0.0.1:0", ts.URL)
	if err != nil {
		t.Fatalf("chaos.NewProxy: %v", err)
	}
	defer p.Close()

	cl := MustNew("http://"+p.Addr(), WithRetries(12), WithBackoff(10*time.Millisecond, 100*time.Millisecond))
	gotEvents, gotResult := streamAll(t, cl, req)

	if p.Faults() == 0 {
		t.Error("chaos proxy injected no faults — the schedule exercised nothing")
	}
	if len(gotEvents) != len(wantEvents) {
		t.Fatalf("chaos stream delivered %d events, clean stream %d", len(gotEvents), len(wantEvents))
	}
	for i := range gotEvents {
		if gotEvents[i] != wantEvents[i] {
			t.Fatalf("event %d differs through chaos proxy\n chaos: %s\n clean: %s", i, gotEvents[i], wantEvents[i])
		}
	}
	if gotResult != wantResult {
		t.Fatalf("result differs through chaos proxy\n chaos: %s\n clean: %s", gotResult, wantResult)
	}
}

// streamAll submits req, streams to the end, and returns each event's
// JSON plus the result JSON.
func streamAll(t *testing.T, cl *Client, req api.Request) ([]string, string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	js, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err := cl.Stream(ctx, js.ID)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer st.Close()
	var events []string
	for {
		ev, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("stream next after %d events: %v", len(events), err)
		}
		// Exactly-once, in-order: shot numbers must advance one by one
		// even while the transport is being cut out from under us.
		if ev.Shot != req.ShotOffset+len(events) {
			t.Fatalf("event %d carries shot %d — duplicate or gap", len(events), ev.Shot)
		}
		b, _ := json.Marshal(ev)
		events = append(events, string(b))
	}
	end := st.End()
	if end == nil || end.State != api.StateDone || end.Result == nil {
		t.Fatalf("job ended %+v", end)
	}
	b, _ := json.Marshal(end.Result)
	return events, string(b)
}
