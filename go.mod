module artery

go 1.24
