// Quickstart: calibrate an ARTERY system, watch the branch predictor fuse
// history with a live readout trajectory on a single shot, then compare
// feedback latency across the five controllers on a quantum-random-walk
// workload.
package main

import (
	"fmt"

	"artery"
)

func main() {
	// New calibrates the readout channel and pre-generates the
	// <trajectory, P_read_1> state table — the paper's hardware
	// initialization step.
	sys := artery.MustNew(artery.WithSeed(42))

	// One predicted shot: a qubit prepared in |1⟩ at a feedback site whose
	// history says branch 1 happens 70 % of the time (the worked example
	// of §4). The posterior crosses the 0.91 threshold mid-readout and the
	// branch pre-executes.
	tr := sys.PredictShot(1, 0.70)
	fmt.Println("single-shot prediction (prepared |1⟩, P_history_1 = 0.70):")
	for _, pt := range tr.Posterior {
		fmt.Printf("  t = %.2f µs   P_predict_1 = %.3f\n", pt[0], pt[1])
		if pt[0] >= tr.TimeUs {
			break
		}
	}
	fmt.Printf("committed branch %d after %.2f µs of a 2.00 µs readout (correct: %v)\n\n",
		tr.Branch, tr.TimeUs, tr.Branch == tr.Truth)

	// Workload comparison: 10-step quantum random walk, 100 shots each.
	fmt.Println("QRW-10, 100 shots per controller:")
	for _, r := range sys.Compare(artery.QRW(10), 100) {
		fmt.Println("  " + r.String())
	}
}
