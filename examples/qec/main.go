// QEC example: the paper's flagship application (§6.2). Runs one d=3
// surface-code correction cycle workload under ARTERY and QubiC, showing
// the fast syndrome-reset and data-qubit pre-correction, then converts the
// cycle latencies into logical error rates with the surface-code memory
// simulation (Figure 12 b).
package main

import (
	"fmt"

	"artery"
)

func main() {
	sys := artery.MustNew(artery.WithSeed(7), artery.WithoutStateSim())

	// One QEC cycle has 16 feedback sites: 8 syndrome readouts with
	// data-qubit pre-correction (case 1) and 8 syndrome pre-resets (case 3).
	wl := artery.QEC(1)
	fmt.Printf("d=3 surface-code cycle: %d feedback sites over %d qubits\n\n",
		wl.NumFeedback(), wl.Circuit.NumQubits)

	arteryRep := sys.Run(wl, 80)
	qubicRep := sys.RunWith("QubiC", wl, 80)
	fmt.Println(arteryRep)
	fmt.Println(qubicRep)
	fmt.Printf("\nARTERY prediction accuracy on syndromes: %.1f%% (history P_1 < 1%% makes QEC the easiest workload)\n\n",
		100*arteryRep.Accuracy)

	// Convert cycle latencies to logical error rates: ARTERY's shorter
	// cycle and prompt pre-correction reduce the data qubits' idle
	// exposure (exposure factor 1.0 vs 1.9 when corrections lag).
	const (
		arteryCycleUs = 2.31
		qubicCycleUs  = 2.45
	)
	pA := artery.CyclePData(arteryCycleUs, 1.0)
	pQ := artery.CyclePData(qubicCycleUs, 1.9)
	fmt.Println("logical error rate (d=3 memory, 4000 trials):")
	fmt.Println("cycles   QubiC     ARTERY")
	for _, c := range []int{1, 5, 10, 15, 20, 25} {
		lerA := artery.LogicalErrorRate(c, 4000, pA, 0.01, 11)
		lerQ := artery.LogicalErrorRate(c, 4000, pQ, 0.01, 13)
		fmt.Printf("%6d   %6.2f%%   %6.2f%%\n", c, 100*lerQ, 100*lerA)
	}
}
