// Active-reset example: the case-3 workload (§3, Figure 3). The feedback
// gate acts on the read qubit itself, so it can never start before the
// readout pulse ends — but prediction still erases the classical
// processing latency: the conditional π pulse is staged during the readout
// and fires on the first fabric cycle after it, instead of waiting for
// ADC + classification + preparation + DAC.
package main

import (
	"fmt"

	"artery"
)

func main() {
	sys := artery.MustNew(artery.WithSeed(5), artery.WithoutStateSim())

	fmt.Println("active qubit reset (thermal excitation 12%):")
	for _, n := range []int{1, 5, 25} {
		wl := artery.Reset(n)
		a := sys.Run(wl, 80)
		q := sys.RunWith("QubiC", wl, 80)
		perA := a.MeanLatencyUs / float64(n)
		perQ := q.MeanLatencyUs / float64(n)
		fmt.Printf("  %2d qubits: ARTERY %.3f µs/qubit vs QubiC %.3f µs/qubit (%.2fx)\n",
			n, perA, perQ, perQ/perA)
	}
	fmt.Println("\nper-qubit latency floors at the 2 µs readout (case 3); the ~0.15 µs")
	fmt.Println("saved per reset is the entire classical processing chain, which is")
	fmt.Println("what the paper reports as 2.16 µs -> 2.01 µs (§6.2).")
}
