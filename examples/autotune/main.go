// Autotune example: the Figure-17 procedure. Calibrate the readout
// channel, then sweep the pre-execution tolerance threshold on training
// pulses for feedback sites with different branch priors, and report the
// latency-minimizing operating point (the paper settles on 0.91 for
// RCNOT). Skewed-prior sites tolerate looser thresholds; balanced sites
// need tighter ones to keep accuracy up.
package main

import (
	"fmt"
	"log"

	"artery"
)

func main() {
	sys := artery.MustNew(artery.WithSeed(17))

	fmt.Println("threshold auto-tuning (400 training shots per candidate):")
	fmt.Println("prior P(read 1)   tuned θ   latency (µs)   accuracy")
	for _, prior := range []float64{0.05, 0.30, 0.50} {
		theta, latUs, acc, err := sys.TuneThreshold(prior, 400)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%14.2f   %7.2f   %12.2f   %7.1f%%\n", prior, theta, latUs, 100*acc)
	}
	fmt.Println("\nthe paper tunes RCNOT to θ = 0.91 (§6.6); conventional feedback")
	fmt.Println("would sit at 2.16 µs regardless of the threshold.")
}
