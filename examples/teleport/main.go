// Teleportation example: deterministic quantum teleportation (DQT) with
// feed-forward corrections over increasing distances — the long-distance
// entanglement scenario where the paper reports ARTERY's largest fidelity
// gains (§6.3, Figure 13 d). The state-vector simulation converts each
// controller's feedback latency into idle decoherence on the payload.
package main

import (
	"fmt"

	"artery"
)

func main() {
	sys := artery.MustNew(artery.WithSeed(99))

	fmt.Println("deterministic quantum teleportation with feed-forward:")
	fmt.Println("distance   controller      latency (µs)   fidelity")
	for _, distance := range []int{1, 3, 6} {
		wl := artery.DQT(distance)
		for _, name := range []string{"ARTERY", "QubiC", "Salathe et al."} {
			r := sys.RunWith(name, wl, 60)
			fmt.Printf("%8d   %-14s %10.2f   %.4f\n",
				distance, r.Controller, r.MeanLatencyUs, r.Fidelity)
		}
	}
	fmt.Println("\nlonger chains mean more feedback sites; ARTERY's early commits")
	fmt.Println("keep the teleported payload coherent while baselines idle through")
	fmt.Println("every full readout + processing chain.")
}
