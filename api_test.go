package artery

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"artery/internal/trace"
)

// Tests for the redesigned public surface: functional options with
// validation, context-aware runs, and the observability exporters.

func TestNewRejectsInvalidConfig(t *testing.T) {
	cases := []struct {
		name string
		opt  Option
		want string
	}{
		{"theta low", WithTheta(0.5), "Theta"},
		{"theta high", WithTheta(1.0), "Theta"},
		{"window negative", WithWindowNs(-5), "WindowNs"},
		{"window beyond readout", WithWindowNs(1e9), "WindowNs"},
		{"history negative", WithHistoryDepth(-1), "HistoryDepth"},
		{"history deep", WithHistoryDepth(21), "HistoryDepth"},
		{"workers negative", WithWorkers(-1), "Workers"},
		{"sigma negative", WithQuasiStaticSigma(-0.1), "QuasiStaticSigma"},
		{"mode unknown", WithMode(PredictorMode(99)), "mode"},
	}
	for _, c := range cases {
		sys, err := New(c.opt)
		if err == nil {
			t.Errorf("%s: New accepted the config", c.name)
			continue
		}
		if sys != nil {
			t.Errorf("%s: New returned a system alongside an error", c.name)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestFromOptionsValidatesToo(t *testing.T) {
	if _, err := FromOptions(Options{Seed: 1, Theta: 0.2}); err == nil {
		t.Fatal("FromOptions accepted Theta 0.2")
	}
	if _, err := FromOptions(Options{Seed: 1, HistoryDepth: 50}); err == nil {
		t.Fatal("FromOptions accepted HistoryDepth 50")
	}
}

func TestMustNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(WithTheta(2)) did not panic")
		}
	}()
	MustNew(WithTheta(2))
}

// TestFromOptionsMatchesFunctionalOptions pins the migration contract:
// the legacy struct form and the option form configure identical systems.
func TestFromOptionsMatchesFunctionalOptions(t *testing.T) {
	a, err := FromOptions(Options{Seed: 21, DisableStateSim: true})
	if err != nil {
		t.Fatal(err)
	}
	b := MustNew(WithSeed(21), WithoutStateSim())
	wl := QRW(3)
	ra, rb := a.Run(wl, 30), b.Run(wl, 30)
	ra.Fidelity, rb.Fidelity = 0, 0 // NaN with state sim off
	if ra.String() != rb.String() || ra.Shots != rb.Shots {
		t.Fatalf("FromOptions and option-form reports diverge:\n%v\n%v", ra, rb)
	}
}

func TestRunContextCanceled(t *testing.T) {
	s := MustNew(WithSeed(4), WithoutStateSim())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := s.RunContext(ctx, QRW(3), 40)
	if err != nil {
		t.Fatalf("canceled run returned error %v; cancellation is a partial result, not a failure", err)
	}
	if !rep.Canceled || rep.Shots != 0 {
		t.Fatalf("Canceled=%v Shots=%d; want true/0", rep.Canceled, rep.Shots)
	}

	rep, err = s.RunContext(context.Background(), QRW(3), 40)
	if err != nil || rep.Canceled || rep.Shots != 40 {
		t.Fatalf("live run: err=%v Canceled=%v Shots=%d", err, rep.Canceled, rep.Shots)
	}
	if len(rep.Stages) == 0 {
		t.Fatal("report has no stage breakdown")
	}
}

func TestRunWithContextRejectsBadInput(t *testing.T) {
	s := MustNew(WithSeed(4), WithoutStateSim())
	if _, err := s.RunWithContext(context.Background(), "ARTERY", nil, 10); err == nil {
		t.Fatal("nil workload accepted")
	}
	if _, err := s.RunWithContext(context.Background(), "NoSuch", QRW(1), 10); err == nil {
		t.Fatal("unknown controller accepted")
	}
}

func TestTracingExportsJSONL(t *testing.T) {
	var buf bytes.Buffer
	s := MustNew(WithSeed(6), WithoutStateSim(), WithTracing(&buf))
	rep := s.Run(QRW(2), 25)
	if rep.Shots != 25 {
		t.Fatalf("Shots = %d", rep.Shots)
	}
	ev, err := trace.ParseJSONL(buf.Bytes())
	if err != nil {
		t.Fatalf("trace output is not valid JSONL: %v", err)
	}
	if len(ev) == 0 {
		t.Fatal("traced run emitted no events")
	}
	last := int32(-1)
	for _, e := range ev {
		if e.Shot < last {
			t.Fatalf("trace stream out of shot order: %d after %d", e.Shot, last)
		}
		last = e.Shot
	}
	if int(last) != 24 {
		t.Fatalf("last traced shot %d, want 24", last)
	}

	// Each run flushes and resets: a second run emits a fresh stream
	// rather than duplicating the first.
	buf.Reset()
	s.Run(QRW(2), 5)
	ev2, err := trace.ParseJSONL(buf.Bytes())
	if err != nil || len(ev2) == 0 {
		t.Fatalf("second flush: %d events, err=%v", len(ev2), err)
	}
	if int(ev2[len(ev2)-1].Shot) != 4 {
		t.Fatalf("second run's last shot %d, want 4", ev2[len(ev2)-1].Shot)
	}
}

func TestWriteMetricsExposition(t *testing.T) {
	s := MustNew(WithSeed(6), WithoutStateSim(), WithMetrics())
	s.Run(QRW(2), 25)
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"artery_shots_total 25",
		"# TYPE artery_shot_latency_ns histogram",
		"artery_feedback_sites_total",
		`artery_shot_latency_ns_bucket{le="+Inf"} 25`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Without WithMetrics the exposition is empty, not an error.
	var none bytes.Buffer
	if err := sys.WriteMetrics(&none); err != nil {
		t.Fatal(err)
	}
	if none.Len() != 0 {
		t.Fatalf("metrics-off system wrote %q", none.String())
	}
}
