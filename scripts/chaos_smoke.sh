#!/usr/bin/env bash
# chaos-smoke: the cluster resilience gate. Boots three backend arteryd
# nodes, fronts each with a deterministic chaos proxy at an escalating
# fault rate (latency, resets, blackholes, truncated/corrupted frames,
# slow-loris drip, 5xx storms — same seed, same schedule), points a
# scatter-gather coordinator at the proxies, drives it with the loadgen,
# and requires the coordinator's result bytes to equal a clean direct
# backend run. Then SIGTERMs the fleet and requires clean drains.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
PIDS=()

cleanup() {
    for pid in "${PIDS[@]:-}"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill -KILL "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/arteryd" ./cmd/arteryd
go build -o "$BIN/artery-bench" ./cmd/artery-bench

# start_node NAME EXTRA_ARGS... — boots an arteryd, waits for its
# address file, and records ADDR_<NAME> / PID_<NAME>.
start_node() {
    local name=$1; shift
    local addr_file="$BIN/$name.addr"
    local log_file="$BIN/$name.log"
    "$BIN/arteryd" -addr 127.0.0.1:0 -addr-file "$addr_file" "$@" \
        >"$log_file" 2>&1 &
    local pid=$!
    PIDS+=("$pid")
    wait_addr "$name" "$addr_file" "$log_file" "$pid"
}

# start_proxy NAME TARGET RATE SEED — boots a chaos proxy in front of
# TARGET and records ADDR_<NAME> / PID_<NAME>.
start_proxy() {
    local name=$1 target=$2 rate=$3 seed=$4
    local addr_file="$BIN/$name.addr"
    local log_file="$BIN/$name.log"
    "$BIN/artery-bench" -chaos -chaos-target "$target" \
        -chaos-proxy 127.0.0.1:0 -chaos-rate "$rate" -chaos-seed "$seed" \
        -chaos-addr-file "$addr_file" >"$log_file" 2>&1 &
    local pid=$!
    PIDS+=("$pid")
    wait_addr "$name" "$addr_file" "$log_file" "$pid"
}

wait_addr() {
    local name=$1 addr_file=$2 log_file=$3 pid=$4
    for _ in $(seq 1 100); do
        [[ -s "$addr_file" ]] && break
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "chaos-smoke: $name died during startup" >&2
            cat "$log_file" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [[ ! -s "$addr_file" ]]; then
        echo "chaos-smoke: $name never published its address" >&2
        cat "$log_file" >&2
        exit 1
    fi
    eval "ADDR_$name=\$(cat "$addr_file")"
    eval "PID_$name=$pid"
    echo "chaos-smoke: $name at $(cat "$addr_file") (pid $pid)"
}

start_node b1 -queue 16 -max-jobs 2 -worker-budget 2
start_node b2 -queue 16 -max-jobs 2 -worker-budget 2
start_node b3 -queue 16 -max-jobs 2 -worker-budget 2

# Escalating fault rates per backend: a mostly-clean node, a degraded
# one, and an actively hostile one. Distinct seeds keep the three
# schedules independent; rerunning the script replays them exactly.
start_proxy p1 "http://$ADDR_b1" 0.05 11
start_proxy p2 "http://$ADDR_b2" 0.15 12
start_proxy p3 "http://$ADDR_b3" 0.25 13

# The coordinator only sees the proxies — every byte to and from the
# fleet crosses a faulty link. A generous shard-attempt budget plus
# hedging and breakers is what the gate exercises.
start_node coord -coordinator \
    -backends "http://$ADDR_p1,http://$ADDR_p2,http://$ADDR_p3" \
    -queue 16 -max-jobs 2 -shard-attempts 6

# Concurrent load straight through the chaos: zero dropped jobs, every
# 429 carries Retry-After, and the built-in resubmit-determinism probe
# must hold even with shards bouncing between degraded backends.
"$BIN/artery-bench" -loadgen "http://$ADDR_coord" -clients 2 -jobs 6 -shots 24

# Bit-identity under chaos: the same request through the chaotic cluster
# and against a clean backend directly must produce identical JSON.
"$BIN/artery-bench" -submit "http://$ADDR_coord" -lg-workload qrw -lg-param 3 \
    -shots 30 -seed 42 >"$BIN/chaotic.json"
"$BIN/artery-bench" -submit "http://$ADDR_b1" -lg-workload qrw -lg-param 3 \
    -shots 30 -seed 42 >"$BIN/clean.json"
if ! diff -u "$BIN/clean.json" "$BIN/chaotic.json"; then
    echo "chaos-smoke: chaotic cluster result diverged from clean run" >&2
    exit 1
fi
echo "chaos-smoke: bit-identity ok ($(wc -c <"$BIN/chaotic.json") result bytes)"

# The resilience metrics must be on the coordinator's /metrics.
METRICS=$(curl -fsS "http://$ADDR_coord/metrics")
for metric in artery_cluster_hedges_total artery_cluster_breaker_state_backend0 \
    artery_cluster_backoff_sleep_ms_total artery_cluster_backend0_attempts_total; do
    echo "$METRICS" | grep -q "^$metric " || {
        echo "chaos-smoke: /metrics missing $metric" >&2
        exit 1
    }
done

# Graceful shutdown: coordinator, proxies, then backends. The proxies
# report their chaos counters on the way out; at these rates the fleet
# must have seen at least one injected fault or the gate tested nothing.
for name in coord b1 b2 b3; do
    pid_var="PID_$name"
    kill -TERM "${!pid_var}"
    if ! wait "${!pid_var}"; then
        echo "chaos-smoke: $name did not drain cleanly" >&2
        cat "$BIN/$name.log" >&2
        exit 1
    fi
    grep -q "drained cleanly" "$BIN/$name.log" || {
        echo "chaos-smoke: $name drain log line missing" >&2
        cat "$BIN/$name.log" >&2
        exit 1
    }
done
faulted=0
for name in p1 p2 p3; do
    pid_var="PID_$name"
    kill -TERM "${!pid_var}"
    if ! wait "${!pid_var}"; then
        echo "chaos-smoke: $name exited non-zero" >&2
        cat "$BIN/$name.log" >&2
        exit 1
    fi
    grep -q "^artery_chaos_connections_total " "$BIN/$name.log" || {
        echo "chaos-smoke: $name reported no chaos counters" >&2
        cat "$BIN/$name.log" >&2
        exit 1
    }
    n=$(grep -oE 'closing \(([0-9]+) connections faulted\)' "$BIN/$name.log" | grep -oE '[0-9]+' || echo 0)
    faulted=$((faulted + n))
done
if [[ "$faulted" -eq 0 ]]; then
    echo "chaos-smoke: no faults injected across all three proxies — schedule exercised nothing" >&2
    exit 1
fi
echo "chaos-smoke: $faulted connections faulted, all results byte-identical"
PIDS=()
echo "chaos-smoke: ok"
