#!/usr/bin/env bash
# crash-smoke: the durability gate. Builds arteryd, then:
#
#  1. Single node: boot with -data-dir, submit a long job, kill -9 the
#     daemon mid-run, restart it on the same data dir, and require the
#     recovered job's full NDJSON stream (every event + the terminal
#     result line) to be byte-identical to an uninterrupted clean run.
#     Also checks the store counters on /metrics and that a SIGTERM
#     drain removes the -addr-file.
#
#  2. Coordinator: journal-backed coordinator over two backends; one
#     backend is kill -9'd mid-job and restarted on its old address;
#     the coordinator must fail the shard over / resume and still
#     deliver the byte-identical stream.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
PIDS=()

cleanup() {
    for pid in "${PIDS[@]:-}"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill -KILL "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/arteryd" ./cmd/arteryd

# The probe job: long enough (~3 s at -worker-budget 1) that the kill
# lands mid-run, deterministic seed, stage deltas on so the stream
# exercises the full event shape.
REQ='{"workload":"qrw","param":5,"controller":"ARTERY","shots":6000,"seed":42,"stream_stages":true}'
SHOTS=6000
KILL_AFTER=1000 # merged shots that must be streamed before the kill

# start_node NAME LISTEN_ADDR EXTRA_ARGS... — boots an arteryd, waits
# for its address file, records ADDR_<NAME> / PID_<NAME>. Pass
# 127.0.0.1:0 for an ephemeral port, or a concrete address to revive a
# killed node where its peers expect it.
start_node() {
    local name=$1 listen=$2; shift 2
    local addr_file="$BIN/$name.addr"
    local log_file="$BIN/$name.log"
    rm -f "$addr_file"
    "$BIN/arteryd" -addr "$listen" -addr-file "$addr_file" "$@" \
        >>"$log_file" 2>&1 &
    local pid=$!
    PIDS+=("$pid")
    for _ in $(seq 1 100); do
        [[ -s "$addr_file" ]] && break
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "crash-smoke: $name died during startup" >&2
            cat "$log_file" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [[ ! -s "$addr_file" ]]; then
        echo "crash-smoke: $name never published its address" >&2
        cat "$log_file" >&2
        exit 1
    fi
    eval "ADDR_$name=\$(cat "$addr_file")"
    eval "PID_$name=$pid"
    echo "crash-smoke: $name at $(cat "$addr_file") (pid $pid)"
}

# submit BASE — POSTs the probe job, echoes the assigned id.
submit() {
    local id
    id=$(curl -fsS -X POST "http://$1/v1/jobs" -d "$REQ" \
        | grep -o '"id":"[^"]*"' | head -1 | cut -d'"' -f4)
    if [[ -z "$id" ]]; then
        echo "crash-smoke: submit to $1 returned no job id" >&2
        exit 1
    fi
    echo "$id"
}

# wait_midrun BASE ID — polls until the job has streamed KILL_AFTER
# shots while still running; fails if it reaches a terminal state first
# (the kill would miss the mid-run window).
wait_midrun() {
    local base=$1 id=$2 body state n
    for _ in $(seq 1 600); do
        body=$(curl -fsS "http://$base/v1/jobs/$id")
        state=$(grep -o '"state":"[^"]*"' <<<"$body" | head -1 | cut -d'"' -f4)
        n=$(grep -o '"shots_streamed":[0-9]*' <<<"$body" | cut -d: -f2)
        case "$state" in
        done | failed | canceled)
            echo "crash-smoke: job reached '$state' after $n shots before the kill window (raise SHOTS)" >&2
            exit 1
            ;;
        esac
        if [[ "${n:-0}" -ge "$KILL_AFTER" ]]; then
            echo "crash-smoke: $id mid-run at $n/$SHOTS shots"
            return 0
        fi
        sleep 0.05
    done
    echo "crash-smoke: job never reached $KILL_AFTER streamed shots" >&2
    exit 1
}

# ---------------------------------------------------------------------
# Golden: an uninterrupted in-memory run (no -data-dir — also pins that
# the store-less default still produces the reference bytes).
start_node golden 127.0.0.1:0
GID=$(submit "$ADDR_golden")
curl -fsS "http://$ADDR_golden/v1/jobs/$GID/stream" >"$BIN/golden.stream"
kill -TERM "$PID_golden" && wait "$PID_golden"
[[ -s "$BIN/golden.stream" ]] || {
    echo "crash-smoke: golden stream is empty" >&2
    exit 1
}
echo "crash-smoke: golden stream captured ($(wc -c <"$BIN/golden.stream") bytes)"

# ---------------------------------------------------------------------
# Part 1: kill -9 a journaling arteryd mid-job, restart, byte-diff.
DATA="$BIN/data"
start_node victim 127.0.0.1:0 -data-dir "$DATA" -checkpoint-shots 64 -fsync interval -worker-budget 1
JID=$(submit "$ADDR_victim")
wait_midrun "$ADDR_victim" "$JID"
kill -KILL "$PID_victim"
wait "$PID_victim" 2>/dev/null || true
echo "crash-smoke: victim killed (SIGKILL)"

start_node reborn 127.0.0.1:0 -data-dir "$DATA" -checkpoint-shots 64 -fsync interval -worker-budget 1
grep -q "recovered 1 jobs" "$BIN/reborn.log" || {
    echo "crash-smoke: restarted daemon did not report a recovered job" >&2
    cat "$BIN/reborn.log" >&2
    exit 1
}
curl -fsS "http://$ADDR_reborn/v1/jobs/$JID/stream" >"$BIN/recovered.stream"
if ! diff -u "$BIN/golden.stream" "$BIN/recovered.stream"; then
    echo "crash-smoke: recovered stream diverged from the uninterrupted run" >&2
    exit 1
fi
echo "crash-smoke: single-node recovery bit-identical ($(wc -c <"$BIN/recovered.stream") bytes)"

# Store counters must ride /metrics.
METRICS=$(curl -fsS "http://$ADDR_reborn/metrics")
for counter in artery_store_records_appended_total artery_store_jobs_recovered_total; do
    echo "$METRICS" | grep -q "^$counter " || {
        echo "crash-smoke: /metrics missing $counter" >&2
        exit 1
    }
done
echo "$METRICS" | grep -q '^artery_store_jobs_recovered_total 1$' || {
    echo "crash-smoke: artery_store_jobs_recovered_total != 1" >&2
    exit 1
}

# Drain must remove the addr file (stale addresses must not race the
# next boot's watchers).
kill -TERM "$PID_reborn"
if ! wait "$PID_reborn"; then
    echo "crash-smoke: restarted daemon did not drain cleanly" >&2
    cat "$BIN/reborn.log" >&2
    exit 1
fi
if [[ -e "$BIN/reborn.addr" ]]; then
    echo "crash-smoke: -addr-file left behind after drain" >&2
    exit 1
fi
echo "crash-smoke: drain removed addr file"

# ---------------------------------------------------------------------
# Part 2: coordinator with a journal; one backend killed mid-job and
# restarted on its old address. The shard fails over / resumes and the
# stitched stream must still match the golden bytes.
start_node b1 127.0.0.1:0 -worker-budget 1
start_node b2 127.0.0.1:0 -worker-budget 1
CDATA="$BIN/cdata"
start_node coord 127.0.0.1:0 -coordinator -backends "http://$ADDR_b1,http://$ADDR_b2" \
    -data-dir "$CDATA" -checkpoint-shots 64 -fsync interval
CJID=$(submit "$ADDR_coord")
wait_midrun "$ADDR_coord" "$CJID"
kill -KILL "$PID_b1"
wait "$PID_b1" 2>/dev/null || true
echo "crash-smoke: backend b1 killed (SIGKILL)"
sleep 0.3
# Revive it on its old address so the coordinator's backend list stays
# valid for later shard attempts.
start_node b1revived "$ADDR_b1" -worker-budget 1

curl -fsS "http://$ADDR_coord/v1/jobs/$CJID/stream" >"$BIN/coord.stream"
if ! diff -u "$BIN/golden.stream" "$BIN/coord.stream"; then
    echo "crash-smoke: coordinator stream diverged after backend kill" >&2
    exit 1
fi
echo "crash-smoke: coordinator survived backend kill, stream bit-identical"

for name in coord b1revived b2; do
    pid_var="PID_$name"
    kill -TERM "${!pid_var}"
    if ! wait "${!pid_var}"; then
        echo "crash-smoke: $name did not drain cleanly" >&2
        cat "$BIN/$name.log" >&2
        exit 1
    fi
done
PIDS=()
echo "crash-smoke: ok"
