#!/usr/bin/env bash
# cluster-smoke: the multi-node service gate. Builds arteryd and
# artery-bench, boots three backend nodes plus a scatter-gather
# coordinator on ephemeral ports, drives the coordinator with the
# loadgen, asserts the coordinator's result bytes equal a single
# backend's for the same request (bit-identical sharded merge), checks
# the cluster shard counters on /metrics, then SIGTERMs the whole fleet
# and requires clean drains.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
PIDS=()

cleanup() {
    for pid in "${PIDS[@]:-}"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill -KILL "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/arteryd" ./cmd/arteryd
go build -o "$BIN/artery-bench" ./cmd/artery-bench

# start_node NAME EXTRA_ARGS... — boots an arteryd, waits for its
# address file, and records ADDR_<NAME> / PID_<NAME>.
start_node() {
    local name=$1; shift
    local addr_file="$BIN/$name.addr"
    local log_file="$BIN/$name.log"
    "$BIN/arteryd" -addr 127.0.0.1:0 -addr-file "$addr_file" "$@" \
        >"$log_file" 2>&1 &
    local pid=$!
    PIDS+=("$pid")
    for _ in $(seq 1 100); do
        [[ -s "$addr_file" ]] && break
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "cluster-smoke: $name died during startup" >&2
            cat "$log_file" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [[ ! -s "$addr_file" ]]; then
        echo "cluster-smoke: $name never published its address" >&2
        cat "$log_file" >&2
        exit 1
    fi
    eval "ADDR_$name=\$(cat "$addr_file")"
    eval "PID_$name=$pid"
    echo "cluster-smoke: $name at $(cat "$addr_file") (pid $pid)"
}

# Three backends with modest budgets — small enough that sharding
# matters, big enough for CI wall clock.
start_node b1 -queue 16 -max-jobs 2 -worker-budget 2
start_node b2 -queue 16 -max-jobs 2 -worker-budget 2
start_node b3 -queue 16 -max-jobs 2 -worker-budget 2

start_node coord -coordinator \
    -backends "http://$ADDR_b1,http://$ADDR_b2,http://$ADDR_b3" \
    -queue 16 -max-jobs 2

# Loadgen against the coordinator: concurrent clients, zero tolerance
# for dropped jobs or 429s without Retry-After, plus the built-in
# resubmit-determinism probe (which now spans the sharded merge path).
"$BIN/artery-bench" -loadgen "http://$ADDR_coord" -clients 4 -jobs 8 -shots 24

# Bit-identity: the same request submitted to the coordinator (sharded
# 3 ways) and to one backend directly must produce identical result
# JSON bytes.
"$BIN/artery-bench" -submit "http://$ADDR_coord" -lg-workload qrw -lg-param 3 \
    -shots 30 -seed 42 >"$BIN/coord.json"
"$BIN/artery-bench" -submit "http://$ADDR_b1" -lg-workload qrw -lg-param 3 \
    -shots 30 -seed 42 >"$BIN/single.json"
if ! diff -u "$BIN/single.json" "$BIN/coord.json"; then
    echo "cluster-smoke: coordinator result diverged from single-node" >&2
    exit 1
fi
echo "cluster-smoke: bit-identity ok ($(wc -c <"$BIN/coord.json") result bytes)"

# The coordinator's /metrics must expose the shard counters, and shards
# must actually have been dispatched.
METRICS=$(curl -fsS "http://$ADDR_coord/metrics")
echo "$METRICS" | grep -q '^artery_cluster_shards_dispatched_total ' || {
    echo "cluster-smoke: /metrics missing artery_cluster_shards_dispatched_total" >&2
    exit 1
}
echo "$METRICS" | grep -q '^artery_cluster_shards_dispatched_total 0$' && {
    echo "cluster-smoke: coordinator dispatched zero shards" >&2
    exit 1
}
echo "$METRICS" | grep -q '^artery_cluster_backend0_shard_seconds_count ' || {
    echo "cluster-smoke: /metrics missing per-backend shard latency" >&2
    exit 1
}

# Graceful fleet drain: coordinator first, then the backends; every
# process must exit 0 and log a clean drain.
for name in coord b1 b2 b3; do
    pid_var="PID_$name"
    kill -TERM "${!pid_var}"
    if ! wait "${!pid_var}"; then
        echo "cluster-smoke: $name did not drain cleanly" >&2
        cat "$BIN/$name.log" >&2
        exit 1
    fi
    grep -q "drained cleanly" "$BIN/$name.log" || {
        echo "cluster-smoke: $name drain log line missing" >&2
        cat "$BIN/$name.log" >&2
        exit 1
    }
done
PIDS=()
echo "cluster-smoke: ok"
