#!/usr/bin/env bash
# profile.sh — one-command CPU + heap profiling of the engine hot path.
#
# Builds artery-bench, runs the engine-throughput benchmark with
# -cpuprofile and -memprofile attached, then prints the top CPU and heap
# consumers. This is the workflow that located the pre-compilation
# hotspots (pulse synthesis ~80% of shot CPU, per-shot Probabilities and
# waveform allocations), and the one to re-run after touching anything on
# the per-shot path.
#
# Usage:
#   scripts/profile.sh                     # profile -engine-bench (default)
#   scripts/profile.sh -exp fig13 -shots 200   # profile any artery-bench mode
#
# Profiles land in $PROFILE_DIR (default ./profiles):
#   profiles/cpu.pprof   CPU samples of the profiled run
#   profiles/mem.pprof   live heap at exit, after a forced GC
#
# Dig deeper interactively:
#   go tool pprof -http=:8080 profiles/cpu.pprof   # flame graph in a browser
#   go tool pprof profiles/mem.pprof               # then: top, list <func>
set -euo pipefail
cd "$(dirname "$0")/.."

GO="${GO:-go}"
DIR="${PROFILE_DIR:-profiles}"
mkdir -p "$DIR"

BIN="$DIR/artery-bench"
"$GO" build -o "$BIN" ./cmd/artery-bench

if [[ $# -eq 0 ]]; then
    set -- -engine-bench "$DIR/bench_engine.json" -shots 300
fi

echo "profile: running artery-bench $* (cpu -> $DIR/cpu.pprof, mem -> $DIR/mem.pprof)"
"$BIN" -cpuprofile "$DIR/cpu.pprof" -memprofile "$DIR/mem.pprof" "$@"

echo
echo "=== top CPU (cumulative) ==="
"$GO" tool pprof -top -nodecount 15 "$BIN" "$DIR/cpu.pprof"
echo
echo "=== top live heap ==="
"$GO" tool pprof -top -nodecount 10 -sample_index=inuse_space "$BIN" "$DIR/mem.pprof"
echo
echo "profile: interactive view: go tool pprof -http=:8080 $DIR/cpu.pprof"
