#!/usr/bin/env bash
# bench_regress.sh — micro-benchmark regression gate for the compiled
# execution hot paths (`make bench-regress`).
#
# Runs the short-mode micro-benchmarks (1Q/2Q kernels, fused-vs-unfused
# chains, state readbacks, pulse synthesis, fused classification, and
# the stabilizer-tableau hot paths: CNOT row update, measurement
# collapse, d=15 surface memory cycle) and
# compares them against the checked-in baseline, scripts/bench_baseline.txt.
# The gate fails when
#
#   - any baseline benchmark regresses in ns/op by more than
#     BENCH_REGRESS_TOL (fractional, default 0.50 — wall-clock noise on
#     shared CI machines makes a tighter gate flaky),
#   - any benchmark that was allocation-free in the baseline starts
#     allocating (allocs/op is noise-free, so it is gated exactly), or
#   - a baseline benchmark disappears from the run.
#
# Each benchmark runs BENCH_REGRESS_COUNT times (default 3) and the gate
# compares the per-benchmark minimum — the standard way to strip scheduler
# noise from a shared machine.
#
# When benchstat is on PATH its delta table is printed as a human-readable
# report, but pass/fail always comes from the built-in comparator so the
# gate works on machines without benchstat (this container has none).
#
# Usage:
#   scripts/bench_regress.sh            # gate against the baseline
#   scripts/bench_regress.sh --update   # re-measure and rewrite the baseline
set -euo pipefail
cd "$(dirname "$0")/.."

GO="${GO:-go}"
BASE=scripts/bench_baseline.txt
TOL="${BENCH_REGRESS_TOL:-0.50}"
COUNT="${BENCH_REGRESS_COUNT:-3}"
TIME="${BENCH_REGRESS_TIME:-0.1s}"
PKGS=(./internal/quantum ./internal/readout ./internal/stabilizer)
BENCH='^(BenchmarkApply1Q|BenchmarkApply2Q|BenchmarkFusedVsUnfused|BenchmarkStateReadbacks|BenchmarkReadoutPulseGen|BenchmarkClassifyFullAndBits|BenchmarkTableauApplyCNOT|BenchmarkTableauMeasureRow|BenchmarkTableauMemoryCycleD15)$'

run_bench() {
    "$GO" test "${PKGS[@]}" -run '^$' -bench "$BENCH" \
        -benchtime "$TIME" -count "$COUNT" -benchmem
}

if [[ "${1:-}" == "--update" ]]; then
    echo "bench-regress: re-measuring baseline (count=$COUNT, benchtime=$TIME)"
    run_bench | tee "$BASE"
    echo "bench-regress: baseline written to $BASE"
    exit 0
fi

if [[ ! -f "$BASE" ]]; then
    echo "bench-regress: no baseline at $BASE (run scripts/bench_regress.sh --update)" >&2
    exit 1
fi

NEW="$(mktemp "${TMPDIR:-/tmp}/bench_regress.XXXXXX")"
trap 'rm -f "$NEW"' EXIT
echo "bench-regress: measuring (count=$COUNT, benchtime=$TIME, tol=$TOL)"
run_bench | tee "$NEW"

if command -v benchstat >/dev/null 2>&1; then
    echo
    benchstat "$BASE" "$NEW" || true
fi

echo
# Built-in comparator: min ns/op and min allocs/op per benchmark name.
awk -v tol="$TOL" -f /dev/stdin "$BASE" "$NEW" <<'AWK'
function key(name) { sub(/-[0-9]+$/, "", name); return name }  # strip -GOMAXPROCS
FNR == 1 { file++ }
/^Benchmark/ && NF >= 3 {
    k = key($1)
    ns = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (file == 1) {
        if (!(k in oldNs) || ns + 0 < oldNs[k] + 0) oldNs[k] = ns
        if (allocs != "" && (!(k in oldAl) || allocs + 0 < oldAl[k] + 0)) oldAl[k] = allocs
    } else {
        seen[k] = 1
        if (!(k in newNs) || ns + 0 < newNs[k] + 0) newNs[k] = ns
        if (allocs != "" && (!(k in newAl) || allocs + 0 < newAl[k] + 0)) newAl[k] = allocs
    }
}
END {
    fail = 0
    for (k in oldNs) {
        if (!(k in seen)) {
            printf "FAIL %-50s missing from the new run\n", k
            fail = 1
            continue
        }
        delta = newNs[k] / oldNs[k] - 1
        status = "ok"
        if (delta > tol) { status = "FAIL"; fail = 1 }
        printf "%-4s %-50s %10.1f -> %10.1f ns/op  %+7.1f%%\n", status, k, oldNs[k], newNs[k], 100 * delta
        if ((k in oldAl) && oldAl[k] + 0 == 0 && (k in newAl) && newAl[k] + 0 > 0) {
            printf "FAIL %-50s was allocation-free, now %s allocs/op\n", k, newAl[k]
            fail = 1
        }
    }
    if (fail) {
        printf "bench-regress: regression beyond %.0f%% (or new allocations) — see FAIL lines\n", 100 * tol
        exit 1
    }
    print "bench-regress: all benchmarks within tolerance"
}
AWK
