#!/usr/bin/env bash
# serve-smoke: the end-to-end service gate. Builds arteryd and
# artery-bench, boots the daemon on an ephemeral port, drives it with the
# loadgen (concurrent clients, zero tolerance for dropped jobs or 429s
# without Retry-After, resubmit-determinism probe), then SIGTERMs the
# daemon and requires a clean drain (exit 0).
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
ADDR_FILE="$BIN/addr"
DAEMON_LOG="$BIN/arteryd.log"
DAEMON_PID=""

cleanup() {
    if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -KILL "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/arteryd" ./cmd/arteryd
go build -o "$BIN/artery-bench" ./cmd/artery-bench

"$BIN/arteryd" -addr 127.0.0.1:0 -addr-file "$ADDR_FILE" \
    -queue 8 -max-jobs 2 >"$DAEMON_LOG" 2>&1 &
DAEMON_PID=$!

# Wait for the daemon to publish its resolved address.
for _ in $(seq 1 100); do
    [[ -s "$ADDR_FILE" ]] && break
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "serve-smoke: arteryd died during startup" >&2
        cat "$DAEMON_LOG" >&2
        exit 1
    fi
    sleep 0.1
done
if [[ ! -s "$ADDR_FILE" ]]; then
    echo "serve-smoke: arteryd never published its address" >&2
    cat "$DAEMON_LOG" >&2
    exit 1
fi
ADDR=$(cat "$ADDR_FILE")
echo "serve-smoke: arteryd at $ADDR (pid $DAEMON_PID)"

# Loadgen: 8 concurrent clients, small shot counts (CI machines may be
# single-core). runLoadgen itself fails on dropped jobs, 429s without
# Retry-After, or a result-determinism mismatch on resubmission.
"$BIN/artery-bench" -loadgen "http://$ADDR" -clients 8 -jobs 16 -shots 20

# /metrics must serve the Prometheus exposition with the service counters.
METRICS=$(curl -fsS "http://$ADDR/metrics")
echo "$METRICS" | grep -q '^artery_server_jobs_submitted_total ' || {
    echo "serve-smoke: /metrics missing artery_server_jobs_submitted_total" >&2
    exit 1
}
echo "$METRICS" | grep -q '^artery_server_jobs_completed_total ' || {
    echo "serve-smoke: /metrics missing artery_server_jobs_completed_total" >&2
    exit 1
}

# Graceful drain: SIGTERM must exit 0 ("drained cleanly").
kill -TERM "$DAEMON_PID"
if ! wait "$DAEMON_PID"; then
    echo "serve-smoke: arteryd did not drain cleanly" >&2
    cat "$DAEMON_LOG" >&2
    exit 1
fi
DAEMON_PID=""
grep -q "drained cleanly" "$DAEMON_LOG" || {
    echo "serve-smoke: drain log line missing" >&2
    cat "$DAEMON_LOG" >&2
    exit 1
}
echo "serve-smoke: ok"
