package artery

import (
	"context"
	"errors"
	"math"
	"testing"
)

// Facade coverage of the simulation-backend option: name validation at
// New, the Clifford-safe noise projection on explicit stabilizer
// requests, the typed rejections re-exported at the root, and a
// successful stabilizer run end to end.

func TestWithBackendUnknownNameRejected(t *testing.T) {
	if _, err := New(WithBackend("tensor-network")); err == nil {
		t.Fatal("New accepted an unknown backend name")
	}
}

func TestWithBackendStabilizerRuns(t *testing.T) {
	s := MustNew(WithSeed(7), WithBackend("stabilizer"))
	r, err := s.RunWithContext(context.Background(), "ARTERY", QRW(3), 20)
	if err != nil {
		t.Fatalf("stabilizer run: %v", err)
	}
	if r.Shots != 20 || r.MeanLatencyUs <= 0 {
		t.Fatalf("report looks broken: %+v", r)
	}
	// A tableau has no amplitudes: fidelity must be NaN, not a number
	// silently computed on the wrong backend.
	if !math.IsNaN(r.Fidelity) {
		t.Fatalf("stabilizer fidelity = %v, want NaN", r.Fidelity)
	}
}

func TestWithBackendStabilizerRejectsNonClifford(t *testing.T) {
	s := MustNew(WithSeed(7), WithBackend("stabilizer"))
	_, err := s.RunWithContext(context.Background(), "ARTERY", MSI(2), 5)
	if !errors.Is(err, ErrNonClifford) {
		t.Fatalf("MSI (T gates) on stabilizer: err = %v, want ErrNonClifford", err)
	}
}

func TestWithBackendStabilizerRejectsQuasiStaticNoise(t *testing.T) {
	// The facade's Clifford-safe projection lifts T1/T2, but a requested
	// quasi-static detuning cannot be projected away silently.
	s := MustNew(WithSeed(7), WithBackend("stabilizer"), WithQuasiStaticSigma(1e-4))
	_, err := s.RunWithContext(context.Background(), "ARTERY", QRW(3), 5)
	if !errors.Is(err, ErrNoiseNotCliffordSafe) {
		t.Fatalf("quasi-static + stabilizer: err = %v, want ErrNoiseNotCliffordSafe", err)
	}
}

func TestWithBackendStateRejectsWideSurface(t *testing.T) {
	s := MustNew(WithSeed(7), WithBackend("state"))
	if _, err := s.RunWithContext(context.Background(), "ARTERY", Surface(5), 5); err == nil {
		t.Fatal("state backend accepted a 49-qubit register")
	}
}

func TestSurfaceWorkloadRunsUnderAuto(t *testing.T) {
	// Under the default auto backend a d=5 surface memory exceeds every
	// state-vector budget but is Clifford, so it must still run (on the
	// tableau once the noise is Clifford-safe, latency-only otherwise).
	s := MustNew(WithSeed(7))
	r, err := s.RunWithContext(context.Background(), "QubiC", Surface(5), 5)
	if err != nil {
		t.Fatalf("auto-backend surface run: %v", err)
	}
	if r.Shots != 5 {
		t.Fatalf("report: %+v", r)
	}
}
