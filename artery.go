// Package artery is the public API of the ARTERY library — a faithful
// reproduction of "ARTERY: Fast Quantum Feedback using Branch Prediction"
// (ISCA 2025).
//
// ARTERY accelerates quantum feedback by predicting the branch of a
// mid-circuit measurement before the readout pulse completes, pre-executing
// the predicted branch circuit, and recovering with inverse gates on a
// misprediction. The predictor fuses each feedback site's historical branch
// distribution with a real-time classification of the partial readout-pulse
// IQ trajectory through a Bayesian model.
//
// The package wires together the full system described in the paper:
// readout-channel calibration, the reconciled branch predictor, the
// feedback controller with dynamic timing and hierarchical interconnect
// routing, the benchmark workloads, and a Monte-Carlo quantum simulation
// that converts feedback latency into fidelity. See DESIGN.md for the
// system inventory and EXPERIMENTS.md for the paper-vs-measured record.
//
// Quickstart:
//
//	sys, err := artery.New(artery.WithSeed(1))
//	if err != nil {
//	    log.Fatal(err)
//	}
//	report := sys.Run(artery.QRW(5), 200)
//	fmt.Printf("latency %.2f µs, accuracy %.1f%%\n",
//	    report.MeanLatencyUs, 100*report.Accuracy)
//
// Construction takes functional options (WithSeed, WithWorkers,
// WithTracing, ...); the Options struct from earlier releases remains
// fully supported through FromOptions:
//
//	sys, err := artery.FromOptions(artery.Options{Seed: 1})
package artery

import (
	"context"
	"fmt"
	"io"
	"math"

	"artery/internal/circuit"
	"artery/internal/controller"
	"artery/internal/core"
	"artery/internal/interconnect"
	"artery/internal/predict"
	"artery/internal/qec"
	"artery/internal/quantum"
	"artery/internal/readout"
	"artery/internal/stats"
	"artery/internal/trace"
	"artery/internal/workload"
)

// Options configures a System. The zero value selects the paper's
// evaluation configuration.
//
// Options is the struct-based configuration from earlier releases; pass it
// through FromOptions. New code usually reads better with New and the
// functional With* options, which also reach features (tracing, metrics)
// that have no Options field. Both construction paths build identical
// systems for the settings they share.
type Options struct {
	// Seed drives every stochastic component; runs are reproducible per
	// seed. Zero selects seed 1.
	Seed uint64
	// WindowNs is the demodulation window length (default 30 ns, §6.1).
	WindowNs float64
	// HistoryDepth is the number of branch-history registers k (default 6).
	HistoryDepth int
	// Theta is the symmetric confidence threshold (default 0.91, Figure 17).
	Theta float64
	// Mode selects the predictor features (default: combined).
	Mode PredictorMode
	// DisableStateSim skips the per-shot quantum-state fidelity simulation
	// (latency and accuracy remain available; much faster for sweeps).
	DisableStateSim bool
	// DynamicalDecoupling executes feedback idle windows as X-echo
	// sequences, refocusing quasi-static dephasing (the paper applies DD
	// to idle qubits in its QEC experiment). Only observable when
	// QuasiStaticSigma is non-zero.
	DynamicalDecoupling bool
	// QuasiStaticSigma adds a per-shot frozen frequency detuning (rad/ns)
	// to the noise model — the refocusable low-frequency dephasing
	// component.
	QuasiStaticSigma float64
	// Workers bounds shot-level parallelism: 0 uses GOMAXPROCS workers, 1
	// forces serial execution. Results are bit-identical at every setting
	// (one RNG stream per shot index, results merged in shot order).
	Workers int
	// Backend selects the quantum simulation backend: "auto" (default,
	// also ""), "state"/"statevector", or "stabilizer"/"tableau". Auto
	// keeps the state vector for small circuits and promotes wide Clifford
	// circuits to the stabilizer tableau; an explicit backend that cannot
	// execute the workload fails the run with a typed error
	// (ErrNonClifford, ErrIrreversibleBody, ErrNoiseNotCliffordSafe).
	// An explicit "stabilizer" runs under the Clifford-safe projection of
	// the device noise model: depolarizing gate error and readout flips
	// apply unchanged, T1/T2 decay (which a tableau cannot represent) is
	// lifted to infinity. Ignored when DisableStateSim is set.
	Backend string
}

// PredictorMode mirrors the Figure-14 ablation arms.
type PredictorMode int

// Predictor modes.
const (
	ModeCombined   PredictorMode = PredictorMode(predict.ModeCombined)
	ModeHistory    PredictorMode = PredictorMode(predict.ModeHistory)
	ModeTrajectory PredictorMode = PredictorMode(predict.ModeTrajectory)
)

// Workload is a feedback benchmark program. Construct instances with QRW,
// RCNOT, DQT, RUSQNN, Reset, Random, QEC, EntangleSwap or MSI, or build a
// circuit directly (e.g. parsed from the QASM dialect) and attach per-site
// priors.
type Workload = workload.Workload

// Report summarizes one workload run under one controller.
type Report struct {
	Workload   string
	Controller string
	Shots      int
	// MeanLatencyUs is the mean per-shot feedback latency in microseconds
	// (summed over the workload's feedback sites, Table 1's metric).
	MeanLatencyUs float64
	// Accuracy is the fraction of committed branch predictions that proved
	// correct (1.0 for the non-predictive baselines).
	Accuracy float64
	// CommitRate is the fraction of feedback executions that committed a
	// prediction before the readout completed.
	CommitRate float64
	// Fidelity is the mean end-of-circuit state fidelity against an ideal
	// zero-latency execution (NaN when state simulation is disabled).
	Fidelity float64
	// Stages is the per-stage feedback-latency breakdown over the run's
	// feedback outcomes, in pipeline order (stages that never occurred are
	// omitted). It is always populated — tracing need not be on — and is
	// bit-identical at any worker count.
	Stages []StageLatency
	// Canceled reports that the run's context was canceled before all
	// requested shots executed; the metrics then cover the Shots merged
	// shots.
	Canceled bool
}

// StageLatency is one row of a Report's per-stage latency breakdown: how
// often a feedback pipeline stage occurred and how many nanoseconds it
// consumed.
type StageLatency = core.StageLatency

func (r Report) String() string {
	return fmt.Sprintf("%-12s %-14s latency=%6.2fµs accuracy=%5.1f%% commit=%5.1f%% fidelity=%.4f",
		r.Workload, r.Controller, r.MeanLatencyUs, 100*r.Accuracy, 100*r.CommitRate, r.Fidelity)
}

// System is a calibrated ARTERY stack: readout channel, predictor,
// controller, interconnect and simulator.
type System struct {
	opts    Options
	channel *readout.Channel
	topo    *interconnect.Topology
	rng     *stats.RNG
	// rec / metrics instrument every run when non-nil (see WithTracing and
	// WithMetrics); traceW receives each run's JSONL event stream.
	rec     *trace.Recorder
	metrics *trace.Registry
	traceW  io.Writer
}

// config is the resolved constructor configuration: the legacy Options
// plus the observability settings only reachable through functional
// options.
type config struct {
	Options
	traceW  io.Writer
	metrics bool
}

// Option configures New. Options compose left to right; later options
// override earlier ones.
type Option func(*config)

// WithSeed seeds every stochastic component; runs are reproducible per
// seed. Zero (and omitting the option) selects seed 1.
func WithSeed(seed uint64) Option { return func(c *config) { c.Seed = seed } }

// WithWorkers bounds shot-level parallelism: 0 uses GOMAXPROCS workers, 1
// forces serial execution. Results are bit-identical at every setting.
func WithWorkers(n int) Option { return func(c *config) { c.Workers = n } }

// WithWindowNs sets the demodulation window length in nanoseconds
// (default 30 ns, §6.1).
func WithWindowNs(ns float64) Option { return func(c *config) { c.WindowNs = ns } }

// WithHistoryDepth sets the number of branch-history registers k
// (default 6).
func WithHistoryDepth(k int) Option { return func(c *config) { c.HistoryDepth = k } }

// WithTheta sets the symmetric confidence threshold (default 0.91,
// Figure 17). Valid thresholds lie in (0.5, 1).
func WithTheta(theta float64) Option { return func(c *config) { c.Theta = theta } }

// WithMode selects the predictor features (default: combined).
func WithMode(m PredictorMode) Option { return func(c *config) { c.Mode = m } }

// WithoutStateSim skips the per-shot quantum-state fidelity simulation
// (latency and accuracy remain available; much faster for sweeps).
func WithoutStateSim() Option { return func(c *config) { c.DisableStateSim = true } }

// WithBackend selects the quantum simulation backend by name; see
// Options.Backend for the accepted names and failure semantics.
func WithBackend(name string) Option { return func(c *config) { c.Backend = name } }

// WithDynamicalDecoupling executes feedback idle windows as X-echo
// sequences; see Options.DynamicalDecoupling.
func WithDynamicalDecoupling() Option { return func(c *config) { c.DynamicalDecoupling = true } }

// WithQuasiStaticSigma adds a per-shot frozen frequency detuning (rad/ns)
// to the noise model; see Options.QuasiStaticSigma.
func WithQuasiStaticSigma(sigma float64) Option { return func(c *config) { c.QuasiStaticSigma = sigma } }

// WithTracing records typed span events for every shot of every run —
// readout classification, per-window posterior evolution, interconnect
// hops, per-stage latency partitions — and streams them to w as JSON
// Lines after each run completes. Tracing never perturbs results: events
// are committed in shot order, so the stream (like the Report) is
// bit-identical at any worker count. A nil w disables tracing.
func WithTracing(w io.Writer) Option {
	return func(c *config) { c.traceW = w }
}

// WithMetrics attaches a metrics registry — counters and latency
// histograms updated on every run — exposed through System.WriteMetrics
// in Prometheus text format.
func WithMetrics() Option { return func(c *config) { c.metrics = true } }

// New calibrates a system: it generates the training pulse corpus, fits
// the readout classifier, and pre-generates the trajectory state table
// (the paper's hardware-initialization step). It returns an error for
// out-of-range settings (Theta outside (0.5, 1), negative WindowNs,
// HistoryDepth outside [1, 20], ...).
func New(opts ...Option) (*System, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	return newSystem(cfg)
}

// FromOptions is New for the struct-based Options configuration of
// earlier releases. Existing callers of the old New(Options) constructor
// migrate by renaming the call and handling the error (or using MustNew
// with functional options):
//
//	sys := artery.New(artery.Options{Seed: 7})          // old
//	sys, err := artery.FromOptions(artery.Options{Seed: 7}) // new
//	sys := artery.MustNew(artery.WithSeed(7))           // new, panicking
func FromOptions(opts Options) (*System, error) {
	return newSystem(config{Options: opts})
}

// MustNew is New but panics on an invalid configuration — convenient in
// tests, examples and package-level variables.
func MustNew(opts ...Option) *System {
	s, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// applyDefaults resolves the zero values of a configuration to the
// paper's evaluation settings.
func applyDefaults(cfg *config) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.WindowNs == 0 {
		cfg.WindowNs = readout.DefaultWinNs
	}
	if cfg.HistoryDepth == 0 {
		cfg.HistoryDepth = readout.DefaultK
	}
	if cfg.Theta == 0 {
		cfg.Theta = 0.91
	}
}

// ValidateOptions reports whether opts (after defaulting, exactly as
// FromOptions would resolve it) describes a constructible system, without
// paying for calibration. Servers use it to reject bad requests at
// admission time instead of failing the job later.
func ValidateOptions(opts Options) error {
	cfg := config{Options: opts}
	applyDefaults(&cfg)
	return validateConfig(cfg)
}

// newSystem applies defaults, validates, and calibrates.
func newSystem(cfg config) (*System, error) {
	applyDefaults(&cfg)
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed)
	ch := readout.NewChannel(readout.DefaultCalibration(), cfg.WindowNs, cfg.HistoryDepth, rng.Split())
	s := &System{opts: cfg.Options, channel: ch, topo: interconnect.PaperTopology(), rng: rng}
	if cfg.traceW != nil {
		s.rec = trace.NewRecorder(0)
		s.traceW = cfg.traceW
	}
	if cfg.metrics {
		s.metrics = trace.NewRegistry()
	}
	return s, nil
}

// validateConfig rejects out-of-range settings after defaulting.
func validateConfig(cfg config) error {
	if cfg.Theta <= 0.5 || cfg.Theta >= 1 {
		return fmt.Errorf("artery: Theta must lie in (0.5, 1), got %v", cfg.Theta)
	}
	if cfg.WindowNs < 0 {
		return fmt.Errorf("artery: WindowNs must be positive, got %v", cfg.WindowNs)
	}
	if dur := readout.DefaultCalibration().DurationNs; cfg.WindowNs > dur {
		return fmt.Errorf("artery: WindowNs %v exceeds the %v ns readout", cfg.WindowNs, dur)
	}
	if cfg.HistoryDepth < 1 || cfg.HistoryDepth > 20 {
		return fmt.Errorf("artery: HistoryDepth must lie in [1, 20], got %d", cfg.HistoryDepth)
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("artery: Workers must be non-negative, got %d", cfg.Workers)
	}
	if cfg.QuasiStaticSigma < 0 {
		return fmt.Errorf("artery: QuasiStaticSigma must be non-negative, got %v", cfg.QuasiStaticSigma)
	}
	if m := predict.Mode(cfg.Mode); m != predict.ModeCombined && m != predict.ModeHistory && m != predict.ModeTrajectory {
		return fmt.Errorf("artery: unknown predictor mode %d", cfg.Mode)
	}
	if _, err := quantum.ParseBackendKind(cfg.Backend); err != nil {
		return fmt.Errorf("artery: %w", err)
	}
	return nil
}

// Typed backend-selection errors, re-exported so callers can errors.Is
// against runStream failures without importing internal packages.
var (
	// ErrNonClifford: the stabilizer backend was requested for a circuit
	// containing a non-Clifford gate.
	ErrNonClifford = circuit.ErrNonClifford
	// ErrIrreversibleBody: the stabilizer backend was requested for a
	// circuit whose feedback bodies cannot be inverted on misprediction.
	ErrIrreversibleBody = circuit.ErrIrreversibleBody
	// ErrNoiseNotCliffordSafe: the stabilizer backend was requested under
	// a noise model with non-Clifford channels.
	ErrNoiseNotCliffordSafe = core.ErrNoiseNotCliffordSafe
)

// controllerRegistry is the single ordered table of feedback controllers:
// ControllerNames and newController both read it, so a controller cannot
// be listed without being constructible (or vice versa). The order is the
// paper's presentation order — ARTERY first, then the four baselines —
// and Compare reports in this order.
var controllerRegistry = []struct {
	name string
	make func(s *System) controller.Controller
}{
	{"ARTERY", func(s *System) controller.Controller {
		cfg := predict.Config{Theta0: s.opts.Theta, Theta1: s.opts.Theta, Mode: predict.Mode(s.opts.Mode)}
		return controller.NewArtery(controller.DefaultUnits(), s.topo, predict.New(cfg, s.channel))
	}},
	{"QubiC", func(s *System) controller.Controller {
		return controller.NewBaseline("QubiC", controller.QubiCOverheadNs, s.topo)
	}},
	{"HERQULES", func(s *System) controller.Controller {
		return controller.NewBaseline("HERQULES", controller.HERQULESOverheadNs, s.topo)
	}},
	{"Salathe et al.", func(s *System) controller.Controller {
		return controller.NewBaseline("Salathe et al.", controller.SalatheOverheadNs, s.topo)
	}},
	{"Reuer et al.", func(s *System) controller.Controller {
		return controller.NewBaseline("Reuer et al.", controller.ReuerOverheadNs, s.topo)
	}},
}

// ControllerNames lists the available feedback controllers: "ARTERY" plus
// the paper's four baselines.
func ControllerNames() []string {
	out := make([]string, len(controllerRegistry))
	for i, e := range controllerRegistry {
		out[i] = e.name
	}
	return out
}

// newController builds a fresh controller by name (fresh predictor state
// per run, so runs are independent).
func (s *System) newController(name string) (controller.Controller, error) {
	for _, e := range controllerRegistry {
		if e.name == name {
			return e.make(s), nil
		}
	}
	return nil, fmt.Errorf("artery: unknown controller %q", name)
}

// Run executes a workload for the given shots under the ARTERY controller.
func (s *System) Run(wl *Workload, shots int) Report {
	return s.RunWith("ARTERY", wl, shots)
}

// RunWith executes a workload under a named controller. It panics on an
// invalid workload or unknown controller name; RunWithContext is the
// error-returning form.
func (s *System) RunWith(name string, wl *Workload, shots int) Report {
	rep, err := s.RunWithContext(context.Background(), name, wl, shots)
	if err != nil {
		panic(err)
	}
	return rep
}

// RunContext is Run with cooperative cancellation and error reporting:
// the engine checks ctx at shot-batch boundaries, and a canceled context
// returns the aggregates over the shots merged so far with
// Report.Canceled set (not an error — the partial result is still valid
// and deterministic). The error path covers invalid workloads.
func (s *System) RunContext(ctx context.Context, wl *Workload, shots int) (Report, error) {
	return s.RunWithContext(ctx, "ARTERY", wl, shots)
}

// RunWithContext is RunContext under a named controller (see
// ControllerNames).
func (s *System) RunWithContext(ctx context.Context, name string, wl *Workload, shots int) (Report, error) {
	return s.runStream(ctx, name, wl, 0, shots, nil)
}

// ShotUpdate is one committed shot of a streaming run: the per-shot
// feedback latency, fidelity and site/commit tallies, delivered in shot
// order as the engine's merge path commits the shot.
type ShotUpdate struct {
	// Shot is the 0-based shot index.
	Shot int
	// LatencyNs is the shot's summed feedback latency (plus gate payload).
	LatencyNs float64
	// Fidelity is the shot's end-of-circuit fidelity (NaN when state
	// simulation is disabled).
	Fidelity float64
	// Sites is the number of feedback sites the shot executed.
	Sites int
	// Commits counts sites whose prediction committed before readout end;
	// Correct counts the committed predictions that needed no recovery.
	Commits, Correct int
	// Fallbacks counts sites served on the degraded blocking path.
	Fallbacks int
	// Stages is the shot's ordered per-stage latency deltas: the fixed gate
	// payload first, then every feedback outcome's additive stage partition
	// in pipeline order. Replaying the deltas of a run's shots in shot
	// order — count[stage]++ and total[stage] += ns per entry — reproduces
	// the run's Report.Stages table bit-for-bit, which is what lets a
	// scatter-gather coordinator recombine sharded shot streams into a
	// result byte-identical to a single-node run.
	Stages []StagePoint
}

// StagePoint is one ordered per-stage latency delta of a streamed shot.
type StagePoint struct {
	// Stage is the trace.Stage name (see Report.Stages rows).
	Stage string
	// Ns is the latency contribution in nanoseconds.
	Ns float64
}

// RunStream is RunWithContext with a per-shot observer: fn is invoked for
// every merged shot, strictly in shot order, before the final Report is
// assembled. The update stream is bit-identical at any worker count (it
// is produced on the engine's in-order merge path), which is what lets a
// network service stream partial results while preserving the engine's
// determinism guarantee. fn must not block — the merge path stalls until
// it returns. A nil fn degenerates to RunWithContext.
func (s *System) RunStream(ctx context.Context, name string, wl *Workload, shots int, fn func(ShotUpdate)) (Report, error) {
	return s.runStream(ctx, name, wl, 0, shots, fn)
}

// RunRangeStream is RunStream over the global shot range
// [offset, offset+shots) of a conceptually larger run: per-shot RNG
// streams are drawn for global indices, ShotUpdate.Shot carries global
// indices, and the Report covers exactly the requested range — each
// shot's values bit-identical to the same shots of a full single-node
// run. Sequential controllers (ARTERY) replay the warmup prefix
// [0, offset) through the controller to reproduce its learned state
// exactly; shot-safe baselines skip the prefix outright. This is the
// execution primitive behind sharded multi-node jobs (see
// internal/cluster): a coordinator splits a job into contiguous ranges,
// runs each on a different arteryd, and merges the streams in index
// order into a byte-identical result.
func (s *System) RunRangeStream(ctx context.Context, name string, wl *Workload, offset, shots int, fn func(ShotUpdate)) (Report, error) {
	return s.runStream(ctx, name, wl, offset, shots, fn)
}

// runStream is the shared run implementation behind RunWithContext,
// RunStream and RunRangeStream.
func (s *System) runStream(ctx context.Context, name string, wl *Workload, offset, shots int, fn func(ShotUpdate)) (Report, error) {
	if err := core.ValidateWorkload(wl); err != nil {
		return Report{}, err
	}
	if offset < 0 {
		return Report{}, fmt.Errorf("artery: shot offset must be non-negative, got %d", offset)
	}
	ctrl, err := s.newController(name)
	if err != nil {
		return Report{}, err
	}
	backend, err := quantum.ParseBackendKind(s.opts.Backend)
	if err != nil {
		return Report{}, fmt.Errorf("artery: %w", err)
	}
	noise := quantum.DeviceNoise()
	noise.QuasiStaticSigma = s.opts.QuasiStaticSigma
	if backend == quantum.BackendStabilizer {
		// A tableau cannot represent amplitude damping: an explicit
		// stabilizer request opts into the Clifford-safe projection of the
		// device noise (depolarizing gate error and readout flips stay;
		// T1/T2 decay is lifted). Quasi-static detuning has no Clifford
		// projection, so that combination stays a typed error.
		if s.opts.QuasiStaticSigma != 0 {
			return Report{}, fmt.Errorf("artery: %w", core.ErrNoiseNotCliffordSafe)
		}
		noise.T1, noise.T2 = math.Inf(1), math.Inf(1)
	}
	eng := core.NewEngine(ctrl, s.channel, noise)
	eng.SimulateState = !s.opts.DisableStateSim
	eng.EnableDD = s.opts.DynamicalDecoupling
	eng.Workers = s.opts.Workers
	eng.Backend = backend
	// An explicit backend the workload cannot run on is a request error,
	// not a panic: resolve it here, before any shot executes.
	if err := eng.CheckBackend(wl); err != nil {
		return Report{}, err
	}
	eng.Trace = s.rec
	eng.Metrics = s.metrics
	if fn != nil {
		eng.OnShot = func(shot int, sr core.ShotResult) {
			u := ShotUpdate{
				Shot:      shot,
				LatencyNs: sr.FeedbackLatencyNs,
				Fidelity:  sr.Fidelity,
				Sites:     len(sr.Outcomes),
				Stages:    stagePoints(wl.GatePayloadNs, sr.Outcomes),
			}
			for _, o := range sr.Outcomes {
				if o.Committed {
					u.Commits++
					if o.Correct {
						u.Correct++
					}
				}
				if o.FellBack {
					u.Fallbacks++
				}
			}
			fn(u)
		}
	}
	res := eng.RunRange(ctx, wl, offset, shots, s.rng.Split())
	if err := s.flushTrace(); err != nil {
		return Report{}, err
	}
	return Report{
		Workload:      res.Workload,
		Controller:    res.Controller,
		Shots:         res.Shots,
		MeanLatencyUs: res.MeanLatencyNs / 1000,
		Accuracy:      res.Accuracy,
		CommitRate:    res.CommitRate,
		Fidelity:      res.MeanFidelity,
		Stages:        res.Stages,
		Canceled:      res.Canceled,
	}, nil
}

// stagePoints flattens one shot's stage-latency deltas in the exact order
// the engine's merge path folds them into RunResult.Stages: the fixed gate
// payload first, then each outcome's additive partition in pipeline order.
func stagePoints(payloadNs float64, outcomes []controller.Outcome) []StagePoint {
	pts := make([]StagePoint, 1, 1+4*len(outcomes))
	pts[0] = StagePoint{Stage: trace.StagePayload.String(), Ns: payloadNs}
	for _, o := range outcomes {
		o.Breakdown.Stages(func(st trace.Stage, d float64) {
			pts = append(pts, StagePoint{Stage: st.String(), Ns: d})
		})
	}
	return pts
}

// flushTrace streams the recorder's committed events to the tracing
// writer and clears the recorder for the next run.
func (s *System) flushTrace() error {
	if s.rec == nil || s.traceW == nil {
		return nil
	}
	err := s.rec.WriteJSONL(s.traceW)
	s.rec.Reset()
	return err
}

// WriteMetrics writes the system's accumulated metrics — counters and
// latency histograms over every run so far — in the Prometheus text
// exposition format. Without WithMetrics it writes nothing.
func (s *System) WriteMetrics(w io.Writer) error {
	return s.metrics.WriteProm(w)
}

// Compare runs a workload under every controller and returns the reports
// in ControllerNames order.
func (s *System) Compare(wl *Workload, shots int) []Report {
	var out []Report
	for _, name := range ControllerNames() {
		out = append(out, s.RunWith(name, wl, shots))
	}
	return out
}

// PredictShot synthesizes one readout pulse for a qubit prepared in the
// given state and traces the predictor's posterior evolution — the
// Figure 15 (a) view of one shot. prior is the site's historical branch-1
// probability.
func (s *System) PredictShot(state int, prior float64) ShotTrace {
	cfg := predict.Config{Theta0: s.opts.Theta, Theta1: s.opts.Theta, Mode: predict.Mode(s.opts.Mode)}
	p := predict.New(cfg, s.channel)
	pulse := s.channel.Cal.Synthesize(state, s.rng)
	d := p.PredictWithHistory(pulse, prior)
	tr := ShotTrace{
		Prepared:  state,
		Truth:     s.channel.Classifier.ClassifyFull(pulse),
		Branch:    d.Branch,
		Committed: d.Committed,
		TimeUs:    d.TimeNs / 1000,
	}
	for _, pt := range d.Trace {
		tr.Posterior = append(tr.Posterior, [2]float64{pt.TimeNs / 1000, pt.PPredict})
	}
	return tr
}

// ShotTrace is the posterior evolution of one predicted shot.
type ShotTrace struct {
	Prepared  int
	Truth     int
	Branch    int
	Committed bool
	TimeUs    float64
	// Posterior holds (time µs, P_predict_1) pairs per window.
	Posterior [][2]float64
}

// WorkloadNames lists the named workloads WorkloadByName can build, in
// presentation order: qrw, rcnot, dqt, rusqnn, reset, qec, eswap, msi,
// surface. (Random is not name-addressable — it takes its own seed.)
func WorkloadNames() []string { return workload.Names() }

// WorkloadByName builds a benchmark workload from its short name and size
// parameter — the single registry behind the server's request decoder and
// the CLI workload flags. It returns an error for an unknown name or an
// out-of-range parameter.
func WorkloadByName(name string, param int) (*Workload, error) {
	return workload.ByName(name, param)
}

// Workload constructors (re-exported from the workload package).

// QRW builds a quantum-random-walk benchmark with the given steps.
func QRW(steps int) *Workload { return workload.QRW(steps) }

// RCNOT builds a remote-CNOT benchmark with the given depth.
func RCNOT(depth int) *Workload { return workload.RCNOT(depth) }

// DQT builds a deterministic-quantum-teleportation benchmark.
func DQT(distance int) *Workload { return workload.DQT(distance) }

// RUSQNN builds a repeat-until-success QNN benchmark.
func RUSQNN(cycles int) *Workload { return workload.RUSQNN(cycles) }

// Reset builds an active-reset benchmark over n qubits.
func Reset(nQubits int) *Workload { return workload.Reset(nQubits) }

// Random builds a random feedback circuit with the given gate count,
// deterministically derived from seed.
func Random(gates int, seed uint64) *Workload {
	return workload.Random(gates, stats.NewRNG(seed))
}

// QEC builds the d=3 surface-code cycle benchmark.
func QEC(cycles int) *Workload { return workload.QECCycle(cycles) }

// EntangleSwap builds the case-2 (ancilla pre-execution) benchmark.
func EntangleSwap(depth int) *Workload { return workload.EntangleSwap(depth) }

// MSI builds the magic-state-injection benchmark (case-1 S corrections).
func MSI(injections int) *Workload { return workload.MSI(injections) }

// Surface builds a distance-d surface-code memory benchmark: 2d²−1
// qubits, two syndrome-extraction rounds with active ancilla-reset
// feedback, and a final data readout. It is pure Clifford, so — unlike
// every other workload — it scales to distances (d ≥ 15, hundreds of
// qubits) only the stabilizer backend can simulate.
func Surface(distance int) *Workload { return workload.SurfaceMemory(distance) }

// LogicalErrorRate simulates a distance-3 surface-code memory for the
// given number of correction cycles and Monte-Carlo trials: pData is the
// per-cycle X-flip probability of each data qubit (fold your controller's
// cycle latency into it via idle decoherence), pMeas the syndrome
// measurement flip probability. It returns the logical error rate —
// the quantity of Figure 12 (b)/(c).
func LogicalErrorRate(cycles, trials int, pData, pMeas float64, seed uint64) float64 {
	code := qec.NewCode(3)
	res := qec.RunMemory(qec.MemoryParams{
		Code:   code,
		Dec:    qec.NewLUTDecoder(code),
		Cycles: cycles,
		Trials: trials,
		PData:  pData,
		PMeas:  pMeas,
	}, stats.NewRNG(seed))
	return res.LogicalErrorRate()
}

// CyclePData converts a QEC cycle latency (in µs) into the per-cycle
// data-qubit flip probability at the calibrated device T1, with an
// exposure factor (>1 when corrections lag, as on conventional
// controllers) and a constant gate-error floor.
func CyclePData(cycleUs, exposure float64) float64 {
	return qec.PDataFromLatency(cycleUs*1000, 125_000, exposure, 0.004)
}

// CircuitLevelLogicalErrorRate is the gate-by-gate counterpart of
// LogicalErrorRate: every syndrome-extraction round runs on the stabilizer
// simulator with depolarizing gate noise (p1q/p2q), measurement flips and
// latency-scaled idle errors. Distance 3 uses the exact lookup-table
// decoder; larger odd distances use the union-find decoder.
func CircuitLevelLogicalErrorRate(distance, cycles, trials int, p2q, pMeas, pIdle float64, seed uint64) float64 {
	code := qec.NewCode(distance)
	var dec qec.Decoder
	if distance == 3 {
		dec = qec.NewLUTDecoder(code)
	} else {
		dec = qec.NewUnionFindDecoder(code)
	}
	res := qec.RunCircuitMemory(qec.CircuitMemoryParams{
		Code: code, Dec: dec, Cycles: cycles, Trials: trials,
		P1Q: p2q / 4, P2Q: p2q, PMeas: pMeas, PIdleData: pIdle,
	}, stats.NewRNG(seed))
	return res.LogicalErrorRate()
}

// TuneThreshold runs the Figure-17 threshold-selection procedure on the
// system's calibrated channel for a feedback site with the given branch-1
// prior, returning the latency-minimizing tolerance threshold and its
// expected per-feedback latency (µs) and accuracy.
func (s *System) TuneThreshold(prior float64, shots int) (theta, latencyUs, accuracy float64, err error) {
	res, err := predict.AutoTune(s.channel, predict.TuneConfig{
		Prior: prior,
		Shots: shots,
		Mode:  predict.Mode(s.opts.Mode),
	}, s.rng.Split())
	if err != nil {
		return 0, 0, 0, err
	}
	return res.Theta, res.MeanLatencyNs / 1000, res.Accuracy, nil
}
