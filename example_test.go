package artery_test

import (
	"fmt"

	"artery"
)

// Example demonstrates the quickstart flow: calibrate a system, run a
// workload under ARTERY and the conventional baseline, and compare.
func Example() {
	sys := artery.MustNew(artery.WithSeed(1), artery.WithoutStateSim())
	wl := artery.QRW(5)
	a := sys.Run(wl, 50)
	q := sys.RunWith("QubiC", wl, 50)
	fmt.Println("ARTERY faster:", a.MeanLatencyUs < q.MeanLatencyUs)
	fmt.Println("accuracy above 80%:", a.Accuracy > 0.8)
	fmt.Println("baseline commits predictions:", q.CommitRate > 0)
	// Output:
	// ARTERY faster: true
	// accuracy above 80%: true
	// baseline commits predictions: false
}

// ExampleSystem_PredictShot traces one predicted shot: the posterior climbs
// as readout windows accumulate until the threshold commits the branch.
func ExampleSystem_PredictShot() {
	sys := artery.MustNew(artery.WithSeed(1))
	tr := sys.PredictShot(1, 0.7)
	fmt.Println("committed before readout end:", tr.Committed && tr.TimeUs < 2.0)
	fmt.Println("posterior trace recorded:", len(tr.Posterior) > 0)
	// Output:
	// committed before readout end: true
	// posterior trace recorded: true
}

// ExampleLogicalErrorRate converts controller cycle latencies into d=3
// surface-code logical error rates (the Figure 12b pipeline).
func ExampleLogicalErrorRate() {
	arteryLER := artery.LogicalErrorRate(10, 3000, artery.CyclePData(2.31, 1.0), 0.01, 7)
	qubicLER := artery.LogicalErrorRate(10, 3000, artery.CyclePData(2.45, 1.9), 0.01, 8)
	fmt.Println("ARTERY cycle suppresses logical errors:", arteryLER < qubicLER)
	// Output:
	// ARTERY cycle suppresses logical errors: true
}

// ExampleWorkload shows the benchmark constructors and their feedback
// structure.
func ExampleWorkload() {
	for _, wl := range []*artery.Workload{
		artery.QRW(3), artery.RCNOT(2), artery.Reset(4), artery.MSI(2),
	} {
		fmt.Printf("%s: %d feedback sites\n", wl.Name, wl.NumFeedback())
	}
	// Output:
	// QRW-3: 3 feedback sites
	// RCNOT-2: 2 feedback sites
	// reset-4: 4 feedback sites
	// MSI-2: 2 feedback sites
}
